"""GPU device cost arithmetic and the two-stream chunk pipeline."""

import pytest

from repro.cluster.presets import nvidia_m2070
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel
from repro.util.errors import ValidationError


@pytest.fixture
def gpu():
    return GPUDevice(nvidia_m2070())


def test_compute_bound_elem_time(gpu):
    w = WorkModel(name="c", flops_per_elem=515, bytes_per_elem=1, gpu_efficiency=1.0)
    assert gpu.elem_time(w) == pytest.approx(1e-9, rel=1e-3)


def test_memory_bound_elem_time(gpu):
    w = WorkModel(name="m", flops_per_elem=1, bytes_per_elem=150, gpu_efficiency=1.0)
    assert gpu.elem_time(w) == pytest.approx(1e-9, rel=1e-3)


def test_kernel_time_includes_launch_overhead(gpu):
    w = WorkModel(name="c", flops_per_elem=515, bytes_per_elem=1, gpu_efficiency=1.0)
    assert gpu.kernel_time(w, 0) == 0.0
    assert gpu.kernel_time(w, 1000) == pytest.approx(
        gpu.spec.kernel_launch_overhead + 1000e-9, rel=1e-3
    )


def test_transfer_time(gpu):
    assert gpu.transfer_time(0) == 0.0
    assert gpu.transfer_time(8e9) == pytest.approx(1.0 + gpu.spec.pcie_latency)
    assert gpu.peer_transfer_time(8e9) == gpu.transfer_time(8e9)
    with pytest.raises(ValidationError):
        gpu.transfer_time(-1)


def test_gpu_overhead_flops_used(gpu):
    w = WorkModel(
        name="o", flops_per_elem=100, bytes_per_elem=1, gpu_efficiency=1.0,
        runtime_overhead_flops=0.0, runtime_overhead_flops_gpu=100.0,
    )
    assert gpu.elem_time(w, framework=True) == pytest.approx(
        2 * gpu.elem_time(w, framework=False)
    )


def test_submit_chunk_pipelines_copy_and_kernel(gpu):
    w = WorkModel(
        name="s", flops_per_elem=515, bytes_per_elem=1, gpu_efficiency=1.0,
        transfer_bytes_per_elem=8.0,
    )
    n = 1_000_000
    ex = gpu.submit_chunk(w, n, ready=0.0, streams=2)
    # Per block: copy 0.5 ms (+latency), kernel ~0.5 ms (+launch).
    # Pipeline: copy1; kernel1 || copy2; kernel2 => ~1.5 ms total.
    assert ex.kernel_end == pytest.approx(1.5e-3, rel=0.05)
    assert ex.copy_start == 0.0


def test_submit_chunk_single_stream_serializes(gpu):
    w = WorkModel(
        name="s", flops_per_elem=515, bytes_per_elem=1, gpu_efficiency=1.0,
        transfer_bytes_per_elem=8.0,
    )
    two = gpu.submit_chunk(w, 1_000_000, ready=0.0, streams=2).kernel_end
    gpu.reset()
    one = gpu.submit_chunk(w, 1_000_000, ready=0.0, streams=1).kernel_end
    assert one > two  # no overlap across blocks with one stream


def test_submit_chunk_validation(gpu):
    w = WorkModel(name="s", flops_per_elem=1, bytes_per_elem=1)
    with pytest.raises(ValidationError):
        gpu.submit_chunk(w, 10, 0.0, streams=0)
    with pytest.raises(ValidationError):
        gpu.submit_chunk(w, -1, 0.0)


def test_reset_clears_engines(gpu):
    w = WorkModel(name="s", flops_per_elem=1, bytes_per_elem=1)
    gpu.submit_chunk(w, 100, 0.0)
    gpu.reset(start=2.0)
    assert gpu.compute_engine.available_at == 2.0
    assert gpu.copy_engine.available_at == 2.0
