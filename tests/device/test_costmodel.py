"""Atomic contention model and shared-memory capacity rules."""

import pytest

from repro.cluster.presets import nvidia_m2070
from repro.device.costmodel import (
    CPU_PRIVATE_INSERT_COST,
    CPU_SHARED_ATOMIC_COST,
    atomic_cost_per_insert,
    reduction_fits_in_shared,
    shared_memory_partitions,
)
from repro.util.errors import ValidationError


@pytest.fixture
def gpu():
    return nvidia_m2070()


def test_cpu_private_is_flat():
    assert atomic_cost_per_insert("cpu", 1, localized=True) == CPU_PRIVATE_INSERT_COST
    assert atomic_cost_per_insert("cpu", 10_000, localized=True) == CPU_PRIVATE_INSERT_COST


def test_cpu_shared_contends_when_keys_below_cores():
    few = atomic_cost_per_insert("cpu", 2, localized=False, cpu_cores=12)
    many = atomic_cost_per_insert("cpu", 100, localized=False, cpu_cores=12)
    assert few == pytest.approx(CPU_SHARED_ATOMIC_COST * 6)
    assert many == pytest.approx(CPU_SHARED_ATOMIC_COST)


def test_gpu_localized_far_cheaper_than_global(gpu):
    local = atomic_cost_per_insert("gpu", 40, localized=True, gpu=gpu)
    global_ = atomic_cost_per_insert("gpu", 40, localized=False, gpu=gpu)
    assert local < global_ / 5


def test_gpu_cost_decreases_with_keys_until_lane_limit(gpu):
    c1 = atomic_cost_per_insert("gpu", 1, localized=False, gpu=gpu)
    c32 = atomic_cost_per_insert("gpu", 32, localized=False, gpu=gpu)
    c64 = atomic_cost_per_insert("gpu", 64, localized=False, gpu=gpu)
    c4096 = atomic_cost_per_insert("gpu", 4096, localized=False, gpu=gpu)
    assert c1 > c32 > c64
    assert c64 == c4096  # lane limit reached


def test_gpu_requires_spec():
    with pytest.raises(ValidationError):
        atomic_cost_per_insert("gpu", 10, localized=True)


def test_unknown_device_kind():
    with pytest.raises(ValidationError):
        atomic_cost_per_insert("tpu", 10, localized=True)


def test_bad_num_keys():
    with pytest.raises(ValidationError):
        atomic_cost_per_insert("cpu", 0, localized=True)


def test_reduction_fits_in_shared(gpu):
    # Kmeans: 40 keys x 4 float32 = 640 B -> fits.
    assert reduction_fits_in_shared(40, 16, gpu)
    # A million keys does not.
    assert not reduction_fits_in_shared(1_000_000, 16, gpu)
    with pytest.raises(ValidationError):
        reduction_fits_in_shared(0, 16, gpu)


def test_shared_memory_partitions_formula(gpu):
    """num_parts = num_nodes / (shared_mem / elem_size) (paper SIII-E)."""
    nodes_per_part = int(gpu.shared_mem_per_sm // 24)
    assert shared_memory_partitions(nodes_per_part, 24, gpu) == 1
    assert shared_memory_partitions(nodes_per_part + 1, 24, gpu) == 2
    assert shared_memory_partitions(10 * nodes_per_part, 24, gpu) == 10
    with pytest.raises(ValidationError):
        shared_memory_partitions(0, 24, gpu)
