"""`repro submit` / `repro jobs` against a live in-process job server."""

import json

import pytest

from repro.cli import main
from repro.serve import JobServer

SUBMIT_ARGS = [
    "submit",
    "heat3d",
    "--nodes",
    "2",
    "--mix",
    "cpu",
    "--preset",
    "laptop",
    "--param",
    "functional_shape=[12,12,12]",
    "--param",
    "simulated_steps=2",
]


@pytest.fixture
def live_server(monkeypatch):
    with JobServer(port=0, rank_budget=8) as server:
        monkeypatch.setenv("REPRO_SERVE_URL", server.url)
        yield server


def test_submit_waits_and_reports(capsys, live_server):
    assert main(SUBMIT_ARGS) == 0
    out = capsys.readouterr().out
    assert "heat3d x2 cpu" in out
    assert "simulated time" in out and "speedup" in out


def test_submit_cache_hit_and_jobs_listing(capsys, live_server):
    assert main(SUBMIT_ARGS) == 0
    capsys.readouterr()
    assert main(SUBMIT_ARGS) == 0  # identical spec: served from cache
    assert "cache hit" in capsys.readouterr().out

    assert main(["jobs"]) == 0
    out = capsys.readouterr().out
    assert live_server.url in out
    assert out.count("done") == 2 and "heat3d x2" in out
    assert "(cached)" in out


def test_submit_faulty_job(capsys, live_server):
    assert (
        main(
            SUBMIT_ARGS
            + [
                "--param",
                "simulated_steps=4",
                "--fault-seed",
                "7",
                "--crash-rank",
                "1",
                "--crash-at",
                "0.05",
                "--checkpoint-every",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "faults" in out and "crashes=1" in out


def test_submit_no_wait_then_stats(capsys, live_server):
    assert main(SUBMIT_ARGS + ["--no-wait"]) == 0
    assert "poll with" in capsys.readouterr().out
    assert main(["jobs", "--stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["rank_budget"] == 8
    assert "cache" in stats and "engine" in stats


def test_submit_rejects_bad_spec(live_server):
    with pytest.raises(SystemExit, match="invalid job spec"):
        main(SUBMIT_ARGS + ["--param", "voxels=7"])
    with pytest.raises(SystemExit, match="expects K=V"):
        main(["submit", "heat3d", "--param", "oops"])


def test_submit_unreachable_server(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_URL", "http://127.0.0.1:9")  # discard port
    with pytest.raises(SystemExit, match="submit failed"):
        main(["submit", "heat3d"])
    with pytest.raises(SystemExit, match="cannot reach"):
        main(["jobs"])


def test_url_flag_overrides_env(capsys, live_server, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_URL", "http://127.0.0.1:9")
    assert main(["jobs", "--url", live_server.url]) == 0
    assert live_server.url in capsys.readouterr().out
