"""JobSpec validation, canonicalization, and content hashing."""

import pytest

from repro.faults.plan import FaultPlan, LinkDegradation, MessageFaultRule, RankCrash
from repro.serve.spec import JobSpec, build_cluster, served_app_names
from repro.util.errors import ValidationError


# ------------------------------------------------------------- validation
def test_served_apps_match_cli_apps():
    assert served_app_names() == sorted(
        ["kmeans", "moldyn", "minimd", "sobel", "heat3d", "jacobi2d"]
    )


def test_unknown_app_rejected():
    with pytest.raises(ValidationError, match="unknown app"):
        JobSpec(app="nbody")


def test_unknown_preset_mix_scale_rejected():
    with pytest.raises(ValidationError, match="preset"):
        JobSpec(app="heat3d", preset="mars")
    with pytest.raises(ValidationError, match="mix"):
        JobSpec(app="heat3d", mix="tpu")
    with pytest.raises(ValidationError, match="scale"):
        JobSpec(app="heat3d", scale="huge")


def test_unknown_config_param_rejected():
    with pytest.raises(ValidationError, match="config params"):
        JobSpec(app="heat3d", params={"voxels": 7})


def test_unknown_run_option_rejected():
    with pytest.raises(ValidationError, match="options"):
        JobSpec(app="moldyn", options={"until_tol": 1e-3})


def test_reserved_option_names_rejected():
    with pytest.raises(ValidationError, match="options"):
        JobSpec(app="heat3d", options={"backend": "threads"})


def test_bad_nodes_workers_backend_rejected():
    with pytest.raises(ValidationError, match="nodes"):
        JobSpec(app="heat3d", nodes=0)
    with pytest.raises(ValidationError, match="workers"):
        JobSpec(app="heat3d", workers=0)
    with pytest.raises(ValidationError, match="backend"):
        JobSpec(app="heat3d", backend="gpu")


def test_bad_fault_plan_rejected():
    with pytest.raises(ValidationError, match="drop_prob"):
        JobSpec(app="heat3d", fault_plan={"rules": [{"drop_prob": 2.0}]})
    with pytest.raises(ValidationError, match="unknown fault-plan keys"):
        JobSpec(app="heat3d", fault_plan={"rulez": []})


def test_build_config_applies_params_and_tuples():
    spec = JobSpec(
        app="heat3d",
        params={"functional_shape": [12, 12, 12], "simulated_steps": 2, "seed": 3},
    )
    config = spec.build_config()
    assert config.functional_shape == (12, 12, 12)
    assert config.simulated_steps == 2 and config.seed == 3


def test_build_cluster_presets():
    assert build_cluster("laptop", 3).num_nodes == 3
    assert build_cluster("ohio", 2).num_nodes == 2
    with pytest.raises(ValidationError, match="preset"):
        build_cluster("moon", 2)


# ------------------------------------------------------------- wire format
def test_round_trip_through_dict():
    spec = JobSpec(
        app="kmeans",
        nodes=3,
        preset="laptop",
        mix="cpu",
        params={"functional_points": 5000, "seed": 2},
        options={"reliable": True},
        priority=7,
        trace=True,
    )
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.content_hash() == spec.content_hash()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValidationError, match="unknown job-spec fields"):
        JobSpec.from_dict({"app": "heat3d", "speed": "ludicrous"})
    with pytest.raises(ValidationError, match="requires an 'app'"):
        JobSpec.from_dict({"nodes": 2})


# ------------------------------------------------------------- content hash
def test_hash_ignores_non_semantic_fields():
    base = JobSpec(app="heat3d", nodes=2)
    assert base.content_hash() == JobSpec(app="heat3d", nodes=2, priority=9).content_hash()
    assert (
        base.content_hash()
        == JobSpec(app="heat3d", nodes=2, backend="processes", workers=4).content_hash()
    )


def test_hash_sees_semantic_fields():
    base = JobSpec(app="heat3d", nodes=2)
    assert base.content_hash() != JobSpec(app="heat3d", nodes=3).content_hash()
    assert base.content_hash() != JobSpec(app="sobel", nodes=2).content_hash()
    assert base.content_hash() != JobSpec(app="heat3d", nodes=2, mix="cpu").content_hash()
    assert (
        base.content_hash()
        != JobSpec(app="heat3d", nodes=2, params={"seed": 1}).content_hash()
    )
    assert (
        base.content_hash()
        != JobSpec(app="heat3d", nodes=2, options={"overlap": False}).content_hash()
    )
    assert base.content_hash() != JobSpec(app="heat3d", nodes=2, trace=True).content_hash()


def test_hash_independent_of_param_dict_order():
    a = JobSpec(app="heat3d", params={"seed": 1, "simulated_steps": 2})
    b = JobSpec(app="heat3d", params={"simulated_steps": 2, "seed": 1})
    assert a.content_hash() == b.content_hash()


# ----------------------------------------------- fault-plan canonical key
def _rules():
    return [
        MessageFaultRule(drop_prob=0.1, src=0, dst=1, t_end=2.0),
        MessageFaultRule(dup_prob=0.2, t_start=1.0),
    ]


def test_canonical_key_order_independent():
    a = FaultPlan(seed=3, rules=_rules())
    b = FaultPlan(seed=3, rules=list(reversed(_rules())))
    assert a.canonical_key() == b.canonical_key()

    crashes = [RankCrash(0, 1.0), RankCrash(2, 0.5, restart_cost=2.0)]
    c = FaultPlan(seed=3, crashes=crashes)
    d = FaultPlan(seed=3, crashes=list(reversed(crashes)))
    assert c.canonical_key() == d.canonical_key()

    degs = [LinkDegradation(bandwidth_factor=0.5), LinkDegradation(extra_latency=1e-4)]
    e = FaultPlan(degradations=degs)
    f = FaultPlan(degradations=list(reversed(degs)))
    assert e.canonical_key() == f.canonical_key()


def test_canonical_key_sees_differences():
    base = FaultPlan(seed=3, rules=_rules())
    assert base.canonical_key() != FaultPlan(seed=4, rules=_rules()).canonical_key()
    assert base.canonical_key() != FaultPlan(seed=3).canonical_key()
    tweaked = [_rules()[0], MessageFaultRule(dup_prob=0.25, t_start=1.0)]
    assert base.canonical_key() != FaultPlan(seed=3, rules=tweaked).canonical_key()
    assert (
        FaultPlan(crashes=[RankCrash(0, 1.0)]).canonical_key()
        != FaultPlan(crashes=[RankCrash(0, 1.0, restart_cost=2.0)]).canonical_key()
    )


def test_canonical_key_ignores_runtime_state():
    plan = FaultPlan(seed=1, crashes=[RankCrash(0, 0.5)])
    before = plan.canonical_key()
    plan.consume_crash(plan.crashes[0])
    plan.decide(0, 1, 0, 0.0)
    assert plan.canonical_key() == before


def test_fault_plan_dict_round_trip():
    plan = FaultPlan(
        seed=9,
        rules=_rules(),
        degradations=[LinkDegradation(bandwidth_factor=0.25, src=1, t_end=3.0)],
        crashes=[RankCrash(1, 0.05, restart_cost=0.5)],
    )
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.canonical_key() == plan.canonical_key()
    # infinite windows survive the "inf" string encoding
    assert clone.rules[1].t_end == float("inf")


def test_spec_hash_independent_of_fault_rule_order():
    a = JobSpec(app="heat3d", fault_plan=FaultPlan(seed=3, rules=_rules()).to_dict())
    b = JobSpec(
        app="heat3d",
        fault_plan=FaultPlan(seed=3, rules=list(reversed(_rules()))).to_dict(),
    )
    assert a.content_hash() == b.content_hash()
    c = JobSpec(app="heat3d", fault_plan=FaultPlan(seed=4, rules=_rules()).to_dict())
    assert a.content_hash() != c.content_hash()
