"""The persistent result store: atomicity, corruption, schema versioning.

The store is the durable tier under the LRU — these tests poke exactly
the ways a shared on-disk cache goes wrong: truncated/corrupt entries,
concurrent writers racing on one key, schema drift between versions, and
stale temp files.
"""

import json
import os
import threading

import pytest

from repro.serve.cache import ResultCache
from repro.serve.store import SCHEMA_VERSION, ResultStore, default_store_root
from repro.util.errors import ValidationError

KEY = "ab" * 32  # a plausible sha256 hex digest
KEY2 = "cd" * 32


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results")


def test_roundtrip_and_layout(store):
    payload = {"makespan": 1.5, "metrics": {"iters": 3}}
    store.put(KEY, payload)
    assert store.get(KEY) == payload
    assert KEY in store and len(store) == 1
    # fan-out layout: results/<first 2 hex chars>/<key>.json
    path = store.path_for(KEY)
    assert path.parent.name == KEY[:2] and path.name == f"{KEY}.json"
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == SCHEMA_VERSION and on_disk["key"] == KEY


def test_get_missing_is_a_miss(store):
    assert store.get(KEY) is None
    assert store.stats()["misses"] == 1 and store.stats()["hits"] == 0


def test_bad_keys_rejected(store):
    for bad in ("", "xyz", "ABC/..", "../../" + "a" * 60, "g" * 64):
        with pytest.raises(ValidationError):
            store.put(bad, {})
        with pytest.raises(ValidationError):
            store.get(bad)


def test_corrupt_entry_skipped_and_rewritten(store):
    store.put(KEY, {"makespan": 1.0})
    store.path_for(KEY).write_text("{not json", encoding="utf-8")
    assert store.get(KEY) is None  # miss, not a crash
    assert store.stats()["corrupt_dropped"] == 1
    assert not store.path_for(KEY).exists()  # dropped so a re-run rewrites it
    store.put(KEY, {"makespan": 2.0})
    assert store.get(KEY) == {"makespan": 2.0}


def test_truncated_entry_skipped(store):
    store.put(KEY, {"makespan": 1.0, "metrics": {"a": 1}})
    path = store.path_for(KEY)
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2], encoding="utf-8")
    assert store.get(KEY) is None
    assert store.stats()["corrupt_dropped"] == 1


def test_wrong_key_entry_dropped(store):
    store.put(KEY, {"makespan": 1.0})
    body = json.loads(store.path_for(KEY).read_text())
    body["key"] = KEY2  # entry claims to be someone else's result
    store.path_for(KEY).write_text(json.dumps(body), encoding="utf-8")
    assert store.get(KEY) is None
    assert store.stats()["corrupt_dropped"] == 1


def test_incompatible_schema_is_miss_but_kept(store):
    store.put(KEY, {"makespan": 1.0})
    body = json.loads(store.path_for(KEY).read_text())
    body["schema"] = SCHEMA_VERSION + 1  # written by a newer repro
    store.path_for(KEY).write_text(json.dumps(body), encoding="utf-8")
    assert store.get(KEY) is None
    stats = store.stats()
    assert stats["incompatible"] == 1 and stats["corrupt_dropped"] == 0
    assert store.path_for(KEY).exists()  # never destroy a newer version's data


def test_concurrent_writers_leave_one_valid_entry(store):
    """N threads racing one key: last atomic replace wins, file never torn."""
    errors: list[Exception] = []

    def write(i: int) -> None:
        try:
            store.put(KEY, {"makespan": float(i), "blob": "x" * 4096})
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    got = store.get(KEY)
    assert got is not None and got["blob"] == "x" * 4096  # intact, some winner
    assert store.stats()["corrupt_dropped"] == 0
    # atomic tempfile+rename leaves no droppings behind
    leftovers = [p for p in store.path_for(KEY).parent.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_keys_len_clear(store):
    store.put(KEY, {"a": 1})
    store.put(KEY2, {"b": 2})
    assert sorted(store.keys()) == sorted([KEY, KEY2])
    store.clear()
    assert len(store) == 0 and store.get(KEY) is None


def test_default_store_root_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
    assert default_store_root() == tmp_path / "envstore"
    monkeypatch.delenv("REPRO_STORE")
    assert default_store_root().name == "results"


# ------------------------------------------------- cache+store layering
def test_cache_miss_falls_through_to_store(tmp_path):
    store = ResultStore(tmp_path)
    warm = ResultCache(4, store=store)
    warm.put(KEY, {"makespan": 9.0})
    cold = ResultCache(4, store=store)  # fresh LRU, same disk
    assert cold.get(KEY) == {"makespan": 9.0}
    stats = cold.stats()
    assert stats["store_hits"] == 1
    assert cold.get(KEY) == {"makespan": 9.0}  # promoted: now a memory hit
    assert cold.stats()["store_hits"] == 1 and cold.stats()["hits"] >= 1


def test_cache_clear_keeps_store(tmp_path):
    cache = ResultCache(4, store=ResultStore(tmp_path))
    cache.put(KEY, {"makespan": 1.0})
    cache.clear()
    assert cache.get(KEY) == {"makespan": 1.0}  # served from disk


def test_cache_eviction_does_not_erase_store(tmp_path):
    store = ResultStore(tmp_path)
    cache = ResultCache(1, store=store)
    cache.put(KEY, {"a": 1})
    cache.put(KEY2, {"b": 2})  # evicts KEY from memory
    assert cache.get(KEY) == {"a": 1}  # disk still has it
