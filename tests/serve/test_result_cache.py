"""Content-addressed result cache: LRU policy, bounds, counters."""

import pytest

from repro.serve.cache import ResultCache
from repro.util.errors import ValidationError


def test_put_get_hit():
    cache = ResultCache(max_entries=4)
    cache.put("a", {"makespan": 1.0})
    assert cache.get("a") == {"makespan": 1.0}
    assert cache.get("b") is None
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1


def test_eviction_respects_cap():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.put("c", {"v": 3})
    assert len(cache) == 2
    assert cache.get("a") is None  # the LRU entry fell out
    assert cache.get("b") == {"v": 2} and cache.get("c") == {"v": 3}
    assert cache.stats()["evictions"] == 1


def test_hits_refresh_recency():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") == {"v": 1}  # refresh 'a'
    cache.put("c", {"v": 3})  # evicts 'b', not 'a'
    assert cache.get("a") == {"v": 1}
    assert cache.get("b") is None


def test_overwrite_same_key_does_not_evict():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.put("a", {"v": 10})
    assert len(cache) == 2
    assert cache.get("a") == {"v": 10} and cache.get("b") == {"v": 2}
    assert cache.stats()["evictions"] == 0


def test_clear_and_validation():
    cache = ResultCache(max_entries=2)
    cache.put("a", {})
    cache.clear()
    assert len(cache) == 0
    with pytest.raises(ValidationError):
        ResultCache(max_entries=0)
