"""The HTTP job service end to end.

Two layers: protocol tests against a gated fake executor (deterministic
queue/cancel/error behaviour, no sims), and acceptance tests running real
simulations — concurrent jobs submitted over the API must produce
makespans repr-equal to the same specs run directly, resubmission must hit
the result cache, and jobs beyond the rank budget must queue, not crash.
"""

import threading
import time

import pytest

from repro.serve import JobServer, JobSpec, ServeClient, ServeError, execute_job


def _spec(seed: int = 0, **over) -> JobSpec:
    fields = dict(
        app="heat3d",
        nodes=2,
        preset="laptop",
        mix="cpu",
        params={"functional_shape": [12, 12, 12], "simulated_steps": 2, "seed": seed},
    )
    fields.update(over)
    return JobSpec(**fields)


# ------------------------------------------------------------- protocol
class GatedExecutor:
    def __init__(self) -> None:
        self.release = threading.Event()
        self.started: list[int] = []

    def __call__(self, spec: JobSpec) -> dict:
        self.started.append(spec.params.get("seed", 0))
        assert self.release.wait(10.0)
        return {"makespan": float(spec.params.get("seed", 0))}


@pytest.fixture
def gated_server():
    executor = GatedExecutor()
    with JobServer(port=0, rank_budget=4, max_queued=2, executor=executor) as server:
        yield ServeClient(server.url), executor
        executor.release.set()


def test_healthz_and_stats(gated_server):
    client, _ = gated_server
    assert client.healthy()
    stats = client.stats()
    assert stats["rank_budget"] == 4 and stats["jobs"] == 0
    assert "cache" in stats and "engine" in stats


def test_submit_status_queue_cancel_flow(gated_server):
    client, executor = gated_server
    first = client.submit(_spec(1, nodes=4))  # occupies the whole budget
    deadline = time.monotonic() + 5.0
    while not executor.started and time.monotonic() < deadline:
        time.sleep(0.005)
    assert executor.started == [1]

    queued = client.submit(_spec(2))
    assert queued["state"] == "queued"
    with pytest.raises(ServeError) as excinfo:
        client.result(queued["id"])
    assert excinfo.value.status == 409

    cancelled = client.cancel(queued["id"])
    assert cancelled["state"] == "cancelled"
    with pytest.raises(ServeError) as excinfo:
        client.cancel(first["id"])  # running jobs don't cancel
    assert excinfo.value.status == 409

    executor.release.set()
    done = client.wait(first["id"], timeout=10.0)
    assert done["state"] == "done"
    assert client.result(first["id"])["result"]["makespan"] == 1.0
    states = {j["id"]: j["state"] for j in client.jobs()}
    assert states[queued["id"]] == "cancelled" and states[first["id"]] == "done"


def test_queue_full_returns_429(gated_server):
    client, executor = gated_server
    client.submit(_spec(1, nodes=4))
    client.submit(_spec(2))
    client.submit(_spec(3))
    with pytest.raises(ServeError) as excinfo:
        client.submit(_spec(4))
    assert excinfo.value.status == 429
    executor.release.set()


def test_bad_requests(gated_server):
    client, _ = gated_server
    with pytest.raises(ServeError) as excinfo:
        client.submit({"app": "nbody"})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit({"app": "heat3d", "nodes": 64})  # over the budget forever
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.status("nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/jobs/x/explode")
    assert excinfo.value.status == 404


def test_failed_job_surfaces_error():
    def boom(spec):
        raise RuntimeError("kaboom")

    with JobServer(port=0, executor=boom) as server:
        client = ServeClient(server.url)
        job = client.submit(_spec(1))
        done = client.wait(job["id"], timeout=10.0)
        assert done["state"] == "failed"
        body = client.result(job["id"])
        assert body["state"] == "failed" and "kaboom" in body["error"]


# ------------------------------------------------------------- acceptance
class CountingExecutor:
    """Real executor, counting executions (to prove cache hits skip work)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, spec: JobSpec) -> dict:
        with self._lock:
            self.calls += 1
        return execute_job(spec)


def _batch_specs() -> list[JobSpec]:
    return [
        _spec(0),
        _spec(1),
        JobSpec(
            app="kmeans",
            nodes=2,
            preset="laptop",
            mix="cpu",
            params={"functional_points": 3000, "k": 8, "seed": 1},
        ),
        JobSpec(
            app="moldyn",
            nodes=2,
            preset="laptop",
            mix="cpu",
            params={"functional_nodes": 800, "simulated_steps": 2},
        ),
    ]


def test_concurrent_jobs_bit_identical_to_direct_runs():
    """ISSUE 9 acceptance: N>=4 concurrent API jobs == direct runs, and
    resubmission is a cache hit without re-execution."""
    specs = _batch_specs()
    direct = [execute_job(spec) for spec in specs]

    executor = CountingExecutor()
    with JobServer(port=0, rank_budget=16, executor=executor) as server:
        client = ServeClient(server.url)
        jobs = [client.submit(spec) for spec in specs]  # all admitted at once
        for job, expected in zip(jobs, direct):
            done = client.wait(job["id"], timeout=300.0)
            assert done["state"] == "done" and not done["cached"]
            result = client.result(job["id"])["result"]
            assert repr(result["makespan"]) == repr(expected["makespan"])
            assert result["result_digest"] == expected["result_digest"]
        assert executor.calls == len(specs)

        # Identical resubmission: served from the content-addressed cache.
        again = client.submit(specs[0])
        assert again["cached"] and again["state"] == "done"
        result = client.result(again["id"])["result"]
        assert repr(result["makespan"]) == repr(direct[0]["makespan"])
        assert executor.calls == len(specs)  # nothing re-executed
        assert client.stats()["cache"]["hits"] == 1


def test_admission_queues_beyond_budget_then_completes():
    """Jobs beyond the rank budget queue (never crash) and still finish
    bit-identically."""
    specs = [_spec(seed) for seed in range(3)]
    direct = [execute_job(spec) for spec in specs]
    with JobServer(port=0, rank_budget=2) as server:  # one 2-rank job at a time
        client = ServeClient(server.url)
        jobs = [client.submit(spec) for spec in specs]
        stats = client.stats()
        assert stats["ranks_in_use"] <= 2
        for job, expected in zip(jobs, direct):
            done = client.wait(job["id"], timeout=300.0)
            assert done["state"] == "done"
            result = client.result(job["id"])["result"]
            assert repr(result["makespan"]) == repr(expected["makespan"])


def test_traced_job_exposes_chrome_trace_and_report():
    from repro.obs.export import validate_chrome_trace

    spec = _spec(0, trace=True)
    with JobServer(port=0) as server:
        client = ServeClient(server.url)
        job = client.submit(spec)
        client.wait(job["id"], timeout=300.0)
        trace = client.trace(job["id"])
        validate_chrome_trace(trace)
        result = client.result(job["id"])["result"]
        assert "trace" not in result  # the big document lives on /trace
        assert result["report"]["makespan"] > 0

        untraced = client.submit(_spec(0))
        client.wait(untraced["id"], timeout=300.0)
        with pytest.raises(ServeError) as excinfo:
            client.trace(untraced["id"])
        assert excinfo.value.status == 404


def test_faulty_checkpointed_job_matches_direct_run():
    from repro.faults.plan import FaultPlan, RankCrash

    plan = FaultPlan.lossy(
        seed=7,
        drop=0.02,
        dup=0.01,
        delay=0.02,
        max_delay=1e-4,
        crashes=[RankCrash(rank=1, at_time=0.05, restart_cost=0.5)],
    )
    spec = _spec(
        0,
        params={"functional_shape": [12, 12, 12], "simulated_steps": 4, "seed": 0},
        options={"reliable": True, "checkpoint_every": 2},
        fault_plan=plan.to_dict(),
    )
    expected = execute_job(spec)
    assert expected["fault_stats"]["crashes_consumed"] == 1
    with JobServer(port=0) as server:
        client = ServeClient(server.url)
        job = client.submit(spec)
        client.wait(job["id"], timeout=300.0)
        result = client.result(job["id"])["result"]
        assert repr(result["makespan"]) == repr(expected["makespan"])
        assert result["fault_stats"] == expected["fault_stats"]
        assert result["metrics"]["recoveries"] == 1


# ------------------------------------------------------------- batched submit
def test_batch_submit_mixed_outcomes(gated_server):
    """One POST /jobs/batch: good specs admit, bad specs error per-entry."""
    client, executor = gated_server
    executor.release.set()
    entries = client.submit_many(
        [
            _spec(1).to_dict(),
            {"app": "no-such-app", "nodes": 2},          # invalid spec
            _spec(2, nodes=40).to_dict(),                # over the rank budget
            _spec(3).to_dict(),
        ]
    )
    assert len(entries) == 4
    assert [e["index"] for e in entries] == [0, 1, 2, 3]
    assert entries[0]["error"] is None and entries[3]["error"] is None
    assert "id" not in entries[1] and "bad job spec" in entries[1]["error"]
    assert "never be scheduled" in entries[2]["error"]
    done = client.wait_many([entries[0]["id"], entries[3]["id"]], timeout=10.0)
    assert all(s["state"] == "done" for s in done.values())
    assert client.stats()["batches"] == 1


def test_batch_submit_body_shapes(gated_server):
    client, executor = gated_server
    executor.release.set()
    # a bare JSON list works too
    entries = client._request("POST", "/jobs/batch", [_spec(7).to_dict()])["jobs"]
    assert entries[0]["state"] in ("queued", "running", "done")
    with pytest.raises(ServeError) as err:
        client._request("POST", "/jobs/batch", {"jobs": "nope"})
    assert err.value.status == 400


def test_batch_cache_hits_complete_at_submission(gated_server):
    client, executor = gated_server
    executor.release.set()
    first = client.submit(_spec(5))
    client.wait(first["id"], timeout=10.0)
    entries = client.submit_many([_spec(5).to_dict()])
    assert entries[0]["state"] == "done" and entries[0]["cached"] is True


# ------------------------------------------------------- persistent store
def test_server_store_survives_restart(tmp_path):
    """A fresh server over the same store answers without executing."""
    calls = []

    def executor(spec):
        calls.append(spec.params.get("seed"))
        return {"makespan": 1.0}

    spec = _spec(0)
    with JobServer(port=0, executor=executor, store_dir=tmp_path) as server:
        client = ServeClient(server.url)
        job = client.submit(spec)
        client.wait(job["id"], timeout=10.0)
    assert calls == [0]
    with JobServer(port=0, executor=executor, store_dir=tmp_path) as server:
        client = ServeClient(server.url)
        job = client.submit(spec)  # cold LRU, warm disk
        assert job["state"] == "done" and job["cached"] is True
        assert calls == [0]  # no second execution
        stats = client.stats()["cache"]
        assert stats["store_hits"] == 1
        assert stats["store"]["root"] == str(tmp_path)
