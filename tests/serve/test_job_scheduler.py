"""Scheduler policy: budgets, priorities, cache, cancel — no real sims.

Every test drives :class:`JobScheduler` with a *gated* fake executor
(jobs block on events until the test releases them), so queue/budget
behaviour is observed deterministically and instantly.
"""

import threading
import time

import pytest

from repro.serve.cache import ResultCache
from repro.serve.scheduler import AdmissionError, JobScheduler
from repro.serve.spec import JobSpec
from repro.util.errors import ValidationError


def _spec(seed: int, nodes: int = 2, priority: int = 0) -> JobSpec:
    return JobSpec(
        app="heat3d",
        nodes=nodes,
        preset="laptop",
        priority=priority,
        params={"seed": seed},
    )


class GatedExecutor:
    """Fake executor: each job signals 'started' and waits to be released."""

    def __init__(self) -> None:
        self.calls: list[int] = []
        self.started: dict[int, threading.Event] = {}
        self.release: dict[int, threading.Event] = {}
        self._lock = threading.Lock()

    def expect(self, *seeds: int) -> None:
        for seed in seeds:
            self.started[seed] = threading.Event()
            self.release[seed] = threading.Event()

    def __call__(self, spec: JobSpec) -> dict:
        seed = spec.params.get("seed", 0)
        with self._lock:
            self.calls.append(seed)
        self.started[seed].set()
        assert self.release[seed].wait(10.0), f"job seed={seed} never released"
        if seed == 13:
            raise RuntimeError("unlucky seed")
        return {"makespan": float(seed)}


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


@pytest.fixture
def gated():
    executor = GatedExecutor()
    scheduler = JobScheduler(executor, rank_budget=4, cache=ResultCache(8))
    yield executor, scheduler
    for event in executor.release.values():
        event.set()
    scheduler.shutdown()


def test_jobs_beyond_budget_queue_not_crash(gated):
    executor, scheduler = gated
    executor.expect(1, 2, 3)
    jobs = [scheduler.submit(_spec(seed)) for seed in (1, 2, 3)]
    executor.started[1].wait(5.0)
    executor.started[2].wait(5.0)
    stats = scheduler.stats()
    assert stats["ranks_in_use"] == 4 == stats["rank_budget"]
    assert jobs[2].state == "queued" and not executor.started[3].is_set()
    for seed in (1, 2, 3):
        executor.release[seed].set()
    for job, seed in zip(jobs, (1, 2, 3)):
        done = scheduler.wait(job.id, timeout=10.0)
        assert done.state == "done" and done.result == {"makespan": float(seed)}
    assert scheduler.stats()["ranks_in_use"] == 0


def test_budget_never_exceeded(gated):
    executor, scheduler = gated
    executor.expect(*range(1, 7))
    jobs = [scheduler.submit(_spec(seed)) for seed in range(1, 7)]
    peak = 0
    for _ in range(50):
        peak = max(peak, scheduler.stats()["ranks_in_use"])
        time.sleep(0.002)
    for seed in range(1, 7):
        executor.release[seed].set()
    for job in jobs:
        scheduler.wait(job.id, timeout=10.0)
        peak = max(peak, scheduler.stats()["ranks_in_use"])
    assert peak <= 4


def test_priority_dispatch_order(gated):
    executor, scheduler = gated
    executor.expect(0, 1, 2)
    blocker = scheduler.submit(_spec(0, nodes=4))
    executor.started[0].wait(5.0)
    low = scheduler.submit(_spec(1, priority=0))
    high = scheduler.submit(_spec(2, nodes=4, priority=5))  # whole budget
    executor.release[0].set()
    executor.started[2].wait(5.0)  # the high-priority job dispatches first
    assert scheduler.get(low.id).state == "queued"
    assert not executor.started[1].is_set()
    executor.release[2].set()
    scheduler.wait(high.id, timeout=10.0)
    executor.started[1].wait(5.0)
    executor.release[1].set()
    scheduler.wait(low.id, timeout=10.0)
    assert blocker.state == "done"


def test_oversize_job_rejected(gated):
    _, scheduler = gated
    with pytest.raises(AdmissionError, match="never be scheduled"):
        scheduler.submit(_spec(1, nodes=5))  # budget is 4


def test_queue_full_rejected():
    executor = GatedExecutor()
    scheduler = JobScheduler(executor, rank_budget=2, max_queued=1)
    try:
        executor.expect(1, 2, 3)
        scheduler.submit(_spec(1))
        executor.started[1].wait(5.0)
        scheduler.submit(_spec(2))  # fills the queue
        with pytest.raises(AdmissionError, match="queue is full"):
            scheduler.submit(_spec(3))
    finally:
        for event in executor.release.values():
            event.set()
        scheduler.shutdown()


def test_cache_hit_completes_without_execution(gated):
    executor, scheduler = gated
    executor.expect(7)
    executor.release[7].set()
    first = scheduler.submit(_spec(7))
    scheduler.wait(first.id, timeout=10.0)
    assert executor.calls == [7]

    again = scheduler.submit(_spec(7))
    assert again.state == "done" and again.cached
    assert again.result == {"makespan": 7.0}
    assert executor.calls == [7]  # no re-execution
    assert scheduler.stats()["cache_hits"] == 1
    assert scheduler.stats()["cache"]["hits"] == 1


def test_cancel_queued_but_not_running(gated):
    executor, scheduler = gated
    executor.expect(1, 2, 3)
    running = scheduler.submit(_spec(1, nodes=4))
    executor.started[1].wait(5.0)
    queued = scheduler.submit(_spec(2))
    assert scheduler.cancel(queued.id)
    assert scheduler.get(queued.id).state == "cancelled"
    assert not scheduler.cancel(running.id)  # running jobs don't cancel
    executor.release[1].set()
    scheduler.wait(running.id, timeout=10.0)
    assert not scheduler.cancel(running.id)  # terminal jobs don't either
    # the cancelled job never dispatches, even once budget frees
    time.sleep(0.05)
    assert not executor.started[2].is_set()


def test_failed_job_reports_error(gated):
    executor, scheduler = gated
    executor.expect(13)
    executor.release[13].set()
    job = scheduler.submit(_spec(13))
    done = scheduler.wait(job.id, timeout=10.0)
    assert done.state == "failed"
    assert "unlucky seed" in done.error
    assert scheduler.cache.stats()["size"] == 0  # failures are not cached


def test_wait_timeout_and_unknown_job(gated):
    executor, scheduler = gated
    executor.expect(1)
    job = scheduler.submit(_spec(1))
    with pytest.raises(TimeoutError):
        scheduler.wait(job.id, timeout=0.05)
    with pytest.raises(KeyError):
        scheduler.get("nope")
    executor.release[1].set()


def test_shutdown_cancels_queue():
    executor = GatedExecutor()
    scheduler = JobScheduler(executor, rank_budget=2)
    executor.expect(1, 2)
    running = scheduler.submit(_spec(1))
    executor.started[1].wait(5.0)
    queued = scheduler.submit(_spec(2))  # can't fit: stays queued
    scheduler.shutdown()
    assert scheduler.get(queued.id).state == "cancelled"
    with pytest.raises(AdmissionError, match="shut down"):
        scheduler.submit(_spec(3))
    executor.release[1].set()  # let the in-flight job drain
    scheduler.wait(running.id, timeout=10.0)


def test_constructor_validation():
    with pytest.raises(ValidationError):
        JobScheduler(lambda spec: {}, rank_budget=0)
    with pytest.raises(ValidationError):
        JobScheduler(lambda spec: {}, max_queued=-1)


# ------------------------------------------------- fairness (anti-starvation)
def test_wide_job_not_starved_by_small_stream():
    """Aging regression: a wide high-priority job must not starve forever
    behind a stream of small jobs that backfill can always fit.

    With the pre-aging dispatcher this test fails: every time a rank pair
    frees, another small job fits and the 4-rank job waits until the small
    queue is completely dry.
    """
    executor = GatedExecutor()
    scheduler = JobScheduler(
        executor, rank_budget=4, cache=ResultCache(8), starvation_limit=2
    )
    try:
        executor.expect(0, 10, 1, 2, 3)
        blocker = scheduler.submit(_spec(0))  # 2 ranks running
        executor.started[0].wait(5.0)
        wide = scheduler.submit(_spec(10, nodes=4, priority=5))  # whole budget
        smalls = [scheduler.submit(_spec(seed)) for seed in (1, 2, 3)]
        # 2 ranks free -> wide can't fit -> s1 backfills (pass-over #1)
        executor.started[1].wait(5.0)
        executor.release[0].set()
        scheduler.wait(blocker.id, timeout=10.0)
        # blocker done -> 2 free again -> s2 backfills (pass-over #2)
        executor.started[2].wait(5.0)
        executor.release[1].set()
        scheduler.wait(smalls[0].id, timeout=10.0)
        # s1 done -> 2 free, but wide has hit the starvation limit: the
        # budget drains for it instead of dispatching s3.
        time.sleep(0.05)
        assert not executor.started[3].is_set(), (
            "small job jumped a starving wide job beyond the aging limit"
        )
        assert scheduler.get(wide.id).state == "queued"
        executor.release[2].set()
        scheduler.wait(smalls[1].id, timeout=10.0)
        # full budget free -> the wide job finally dispatches, ahead of s3
        executor.started[10].wait(5.0)
        assert not executor.started[3].is_set()
        stats = scheduler.stats()["fairness"]
        assert stats["pass_overs"] >= 2 and stats["reservations"] >= 1
        executor.release[10].set()
        scheduler.wait(wide.id, timeout=10.0)
        executor.started[3].wait(5.0)
        executor.release[3].set()
        scheduler.wait(smalls[2].id, timeout=10.0)
    finally:
        for event in executor.release.values():
            event.set()
        scheduler.shutdown()


def test_starvation_limit_validation():
    with pytest.raises(ValidationError):
        JobScheduler(lambda spec: {}, starvation_limit=0)


# ------------------------------------------------------------- batched submit
def test_submit_many_mixed_outcomes(gated):
    executor, scheduler = gated
    executor.expect(1, 2)
    for seed in (1, 2):
        executor.release[seed].set()
    outcomes = scheduler.submit_many(
        [_spec(1), _spec(2, nodes=5), _spec(2)]  # nodes=5 > rank budget 4
    )
    assert [o["ok"] for o in outcomes] == [True, False, True]
    assert "never be scheduled" in outcomes[1]["error"]
    for outcome in (outcomes[0], outcomes[2]):
        done = scheduler.wait(outcome["job"].id, timeout=10.0)
        assert done.state == "done"
    assert scheduler.stats()["batches"] == 1


def test_stats_utilization_gauges(gated):
    executor, scheduler = gated
    executor.expect(1)
    job = scheduler.submit(_spec(1))  # 2 of 4 ranks
    executor.started[1].wait(5.0)
    time.sleep(0.03)  # accrue some busy rank-seconds
    util = scheduler.stats()["utilization"]
    assert util["ranks_in_use"] == 2 and util["rank_budget"] == 4
    assert util["instantaneous"] == pytest.approx(0.5)
    executor.release[1].set()
    scheduler.wait(job.id, timeout=10.0)
    util = scheduler.stats()["utilization"]
    assert util["ranks_in_use"] == 0
    assert util["busy_rank_seconds"] > 0.0
    assert 0.0 < util["average"] <= 1.0
