"""RuntimeEnv device-team construction."""

import pytest

from repro.core.env import DEVICE_MIXES, DeviceConfig, RuntimeEnv
from repro.core.generalized import GeneralizedReductionRuntime
from repro.core.irregular import IrregularReductionRuntime
from repro.core.stencil import StencilRuntime
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd


def _env_of(mix, gpus_per_node=2):
    def prog(ctx):
        env = RuntimeEnv(ctx, mix)
        return [type(d).__name__ for d in env.devices]

    return run_spmd(prog, nodes=1, gpus_per_node=gpus_per_node).values[0]


def test_named_mixes():
    assert _env_of("cpu") == ["CPUDevice"]
    assert _env_of("1gpu") == ["GPUDevice"]
    assert _env_of("2gpu") == ["GPUDevice", "GPUDevice"]
    assert _env_of("cpu+1gpu") == ["CPUDevice", "GPUDevice"]
    assert _env_of("cpu+2gpu") == ["CPUDevice", "GPUDevice", "GPUDevice"]


def test_default_uses_all():
    assert _env_of(DeviceConfig()) == ["CPUDevice", "GPUDevice", "GPUDevice"]


def test_unknown_mix_name():
    def prog(ctx):
        RuntimeEnv(ctx, "gpu-only")

    with pytest.raises(ConfigurationError, match="unknown device mix"):
        run_spmd(prog, nodes=1)


def test_too_many_gpus():
    def prog(ctx):
        RuntimeEnv(ctx, DeviceConfig(num_gpus=3))

    with pytest.raises(ConfigurationError, match="3 GPUs"):
        run_spmd(prog, nodes=1, gpus_per_node=2)


def test_empty_selection_rejected():
    def prog(ctx):
        RuntimeEnv(ctx, DeviceConfig(use_cpu=False, num_gpus=0))

    with pytest.raises(ConfigurationError, match="no devices"):
        run_spmd(prog, nodes=1)


def test_accessors_and_factories():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        assert isinstance(env.cpu, CPUDevice)
        assert len(env.gpus) == 1 and isinstance(env.gpus[0], GPUDevice)
        assert env.rank == ctx.rank and env.nprocs == ctx.size
        assert env.host_memcpy_time(1000) > 0
        assert isinstance(env.get_GR(), GeneralizedReductionRuntime)
        assert isinstance(env.get_IR(), IrregularReductionRuntime)
        assert isinstance(env.get_stencil(), StencilRuntime)
        env.finalize()
        return True

    assert run_spmd(prog, nodes=1).values[0]


def test_finalized_env_rejects_factories():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        env.finalize()
        env.get_GR()

    with pytest.raises(ConfigurationError, match="finalized"):
        run_spmd(prog, nodes=1)


def test_gpu_only_env_has_host_memcpy():
    def prog(ctx):
        env = RuntimeEnv(ctx, "1gpu")
        assert env.cpu is None
        return env.host_memcpy_time(1_000_000)

    assert run_spmd(prog, nodes=1).values[0] > 0


def test_mix_labels():
    assert DeviceConfig(True, 2).label() == "cpu=y,gpus=2"
    assert set(DEVICE_MIXES) == {"cpu", "1gpu", "2gpu", "cpu+1gpu", "cpu+2gpu"}
