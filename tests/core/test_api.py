"""User-facing kernel specs, get-functions, and per-element adapters."""

import numpy as np
import pytest

from repro.core.api import (
    GRKernel,
    IRKernel,
    REDUCTION_OPS,
    StencilKernel,
    elementwise_edge_compute,
    elementwise_emit,
    emit_keys_batch,
    elementwise_stencil,
    resolve_op,
    shifted,
)
from repro.core.reduction_object import DenseReductionObject
from repro.device.work import WorkModel
from repro.util.errors import ValidationError

WORK = WorkModel(name="w", flops_per_elem=1, bytes_per_elem=1)


def test_reduction_ops_registry():
    assert set(REDUCTION_OPS) == {"sum", "prod", "min", "max"}
    ufunc, ident = resolve_op("min")
    assert ufunc is np.minimum and ident == np.inf
    with pytest.raises(ValidationError):
        resolve_op("mean")


def test_shifted_view():
    a = np.arange(25.0).reshape(5, 5)
    region = (slice(1, 4), slice(1, 4))
    np.testing.assert_array_equal(shifted(a, region, (0, 0)), a[1:4, 1:4])
    np.testing.assert_array_equal(shifted(a, region, (1, 0)), a[2:5, 1:4])
    np.testing.assert_array_equal(shifted(a, region, (-1, -1)), a[0:3, 0:3])


def test_shifted_bounds_checked():
    a = np.zeros((4, 4))
    with pytest.raises(ValidationError, match="halo"):
        shifted(a, (slice(0, 2), slice(0, 2)), (-1, 0))
    with pytest.raises(ValidationError):
        shifted(a, (slice(2, 4), slice(0, 2)), (1, 0))
    with pytest.raises(ValidationError, match="rank"):
        shifted(a, (slice(0, 2),), (0, 0))


def test_elementwise_emit_equals_batch():
    def emit(obj, unit, index, param):
        obj.insert(int(unit[0] * 4) % 4, float(index) + param)

    batch = elementwise_emit(emit)
    data = np.random.default_rng(0).random((20, 1))
    a = DenseReductionObject(4, 1, "sum")
    batch(a, data, 100, 0.5)
    b = DenseReductionObject(4, 1, "sum")
    for i in range(20):
        emit(b, data[i], 100 + i, 0.5)
    np.testing.assert_allclose(a.values, b.values)


def test_elementwise_edge_compute_equals_batch():
    def edge_fn(obj, edge, edata, nodes, param):
        obj.insert(int(edge[0]), nodes[edge[1], 0] * (edata if edata is not None else 1.0))

    batch = elementwise_edge_compute(edge_fn)
    edges = np.array([[0, 1], [2, 0], [1, 2]])
    weights = np.array([2.0, 3.0, 4.0])
    nodes = np.arange(6.0).reshape(3, 2)
    a = DenseReductionObject(3, 1, "sum")
    batch(a, edges, weights, nodes, None)
    b = DenseReductionObject(3, 1, "sum")
    for i in range(3):
        edge_fn(b, edges[i], weights[i], nodes, None)
    np.testing.assert_allclose(a.values, b.values)


def test_elementwise_stencil_equals_vectorized():
    def point_fn(src, dst, coord, param):
        y, x = coord
        dst[y, x] = src[y - 1, x] + src[y + 1, x]

    apply = elementwise_stencil(point_fn)
    src = np.random.default_rng(1).random((6, 6))
    dst = np.zeros_like(src)
    region = (slice(1, 5), slice(1, 5))
    apply(src, dst, region, None)
    expected = src[0:4, 1:5] + src[2:6, 1:5]
    np.testing.assert_allclose(dst[region], expected)


def test_grkernel_validation():
    with pytest.raises(ValidationError):
        GRKernel(lambda *a: None, "sum", 0, 1, WORK)
    with pytest.raises(ValidationError):
        GRKernel(lambda *a: None, "nope", 4, 1, WORK)


def test_irkernel_validation():
    with pytest.raises(ValidationError):
        IRKernel(lambda *a: None, "sum", 0, WORK)


def test_stencil_kernel_validation():
    with pytest.raises(ValidationError):
        StencilKernel(lambda *a: None, 0, WORK)
    k = StencilKernel(lambda *a: None, 2, WORK)
    assert k.halo == 2


def test_emit_keys_batch_bit_identical_to_insert_loop():
    # The compatibility contract of the batched dispatch path: inserting a
    # batch into a fresh object yields *bit-identical* state to the
    # per-element insert loop, including duplicate-key combining order and
    # the key-range drop counters.
    rng = np.random.default_rng(7)
    keys = rng.integers(-3, 12, size=200)  # includes out-of-range on both ends
    values = rng.random((200, 2))

    batched = DenseReductionObject(8, 2, "sum")
    emit_keys_batch(batched, keys, values)

    looped = DenseReductionObject(8, 2, "sum")
    for k, v in zip(keys, values):
        looped.insert(int(k), v)

    np.testing.assert_array_equal(batched.as_array(), looped.as_array())
    assert (batched.n_inserts, batched.n_dropped) == (looped.n_inserts, looped.n_dropped)


def test_emit_keys_batch_bit_identical_non_sum_path():
    # Same contract on the ufunc.at scatter path (no bincount fast path).
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 5, size=64)
    values = rng.random(64)

    batched = DenseReductionObject(5, 1, "max")
    emit_keys_batch(batched, keys, values)

    looped = DenseReductionObject(5, 1, "max")
    for k, v in zip(keys, values):
        looped.insert(int(k), float(v))

    np.testing.assert_array_equal(batched.as_array(), looped.as_array())
