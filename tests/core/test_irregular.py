"""Irregular-reduction runtime: protocol and numerical correctness."""

import numpy as np
import pytest

from repro.core.api import IRKernel
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError, ValidationError
from tests.conftest import run_spmd

N = 120
WORK = WorkModel(
    name="ir", flops_per_elem=12, bytes_per_elem=48, cpu_mem_efficiency=0.8,
    atomics_per_elem=2, num_reduction_keys=N,
)
RNG = np.random.default_rng(5)
_raw = RNG.integers(0, N, size=(900, 2))
EDGES = np.unique(_raw[_raw[:, 0] != _raw[:, 1]], axis=0)
WEIGHTS = RNG.random(len(EDGES))
NODES = RNG.random((N, 2))


def _edge_batch(obj, edges, edata, nodes, param):
    du = nodes[edges[:, 0], 0] - nodes[edges[:, 1], 0]
    f = edata * du
    obj.insert_many(edges[:, 0], f)
    obj.insert_many(edges[:, 1], -f)


def _kernel():
    return IRKernel(edge_compute_batch=_edge_batch, reduce_op="sum", value_width=1, work=WORK)


def _reference(nodes=NODES):
    du = nodes[EDGES[:, 0], 0] - nodes[EDGES[:, 1], 0]
    f = WEIGHTS * du
    ref = np.zeros(N)
    np.add.at(ref, EDGES[:, 0], f)
    np.add.at(ref, EDGES[:, 1], -f)
    return ref


def _collect(values):
    got = np.zeros(N)
    for lo, hi, part in values:
        got[lo:hi] = part
    return got


def _program(mix="cpu+2gpu", steps=1, **ir_opts):
    def prog(ctx):
        env = RuntimeEnv(ctx, mix)
        ir = env.get_IR(**ir_opts)
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        for _ in range(steps):
            ir.start()
        lo, hi = ir.local_node_range
        return lo, hi, ir.get_local_reduction()[:, 0]

    return prog


@pytest.mark.parametrize("nodes", [1, 2, 3, 4])
def test_correct_across_rank_counts(nodes):
    res = run_spmd(_program(), nodes=nodes, gpus_per_node=2)
    np.testing.assert_allclose(_collect(res.values), _reference(), rtol=1e-12)


@pytest.mark.parametrize("mix", ["cpu", "1gpu", "cpu+1gpu", "cpu+2gpu"])
def test_correct_across_device_mixes(mix):
    res = run_spmd(_program(mix), nodes=2, gpus_per_node=2)
    np.testing.assert_allclose(_collect(res.values), _reference(), rtol=1e-12)


def test_overlap_off_same_numbers_slower_or_equal_time():
    on = run_spmd(_program(overlap=True), nodes=4, gpus_per_node=2)
    off = run_spmd(_program(overlap=False), nodes=4, gpus_per_node=2)
    np.testing.assert_allclose(_collect(on.values), _collect(off.values), rtol=1e-12)
    assert off.makespan >= on.makespan * 0.999


def test_multiple_steps_without_update_are_idempotent():
    res = run_spmd(_program(steps=3), nodes=2, gpus_per_node=2)
    np.testing.assert_allclose(_collect(res.values), _reference(), rtol=1e-12)


def test_update_nodedata_propagates_to_remote_copies():
    """The step-5/6 exchange must refresh remote nodes after an update —
    functionally, not just in simulated time."""

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        ir.start()
        ir.update_nodedata(ir.get_local_nodes() * 2.0)
        ir.start()
        lo, hi = ir.local_node_range
        return lo, hi, ir.get_local_reduction()[:, 0]

    res = run_spmd(prog, nodes=3)
    np.testing.assert_allclose(_collect(res.values), _reference(NODES * 2.0), rtol=1e-12)


def test_remote_slots_filled_only_by_protocol():
    """Remote node values start zeroed and must be delivered by messages."""

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        arr = ir._arr
        before = ir._nodes[arr.n_local :].copy()
        ir.start()
        after = ir._nodes[arr.n_local :].copy()
        return len(before), float(np.abs(before).sum()), float(np.abs(after).sum())

    res = run_spmd(prog, nodes=3)
    for n_remote, before, after in res.values:
        assert before == 0.0
        if n_remote:
            assert after > 0.0


def test_get_local_nodes_and_range():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        lo, hi = ir.local_node_range
        np.testing.assert_allclose(ir.get_local_nodes(), NODES[lo:hi])
        return lo, hi

    res = run_spmd(prog, nodes=3)
    ranges = res.values
    assert ranges[0][0] == 0 and ranges[-1][1] == N
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert b == c


def test_update_nodedata_shape_check():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        ir.update_nodedata(np.zeros((3, 2)))

    with pytest.raises(ConfigurationError, match="shape"):
        run_spmd(prog, nodes=2)


def test_adaptive_repartitions_after_first_step():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS, model_edges=len(EDGES) * 1000)
        ir.start()
        first = ir._ranges
        ir.update_nodedata(ir.get_local_nodes())
        ir.start()
        second = ir._ranges
        return first, second, ir._partitioner.profiled

    first, second, profiled = run_spmd(prog, nodes=1, gpus_per_node=1).values[0]
    assert profiled
    assert first != second  # speed-proportional split differs from even


def test_adaptive_off_keeps_even_split():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        ir = env.get_IR(adaptive=False)
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        ir.start()
        first = ir._ranges
        ir.start()
        return first, ir._ranges

    first, second = run_spmd(prog, nodes=1).values[0]
    assert first == second


def test_repartition_invalidates_edge_cache_and_preserves_results():
    """Forced mid-run repartition: the cached device partitions are rebuilt
    exactly once, step results stay bit-identical across the rebuild, and
    the per-device drop accounting matches the cross-device duplication."""

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        # Large model scale makes the profiled split differ from even.
        ir.set_mesh(EDGES, NODES, WEIGHTS, model_edges=len(EDGES) * 1000)
        ir.start()
        builds1, ranges1 = ir._cache_builds, ir._ranges
        r1 = ir.get_local_reduction()[:, 0].copy()
        ir.start()
        builds2, ranges2 = ir._cache_builds, ir._ranges
        r2 = ir.get_local_reduction()[:, 0].copy()
        ir.start()  # stable split: cache must be reused, not rebuilt
        builds3 = ir._cache_builds
        # Accounting invariant: summed over devices, kept inserts equal
        # both endpoints of every local edge plus the one owned endpoint
        # of every cross edge (the other endpoint is a remote slot).
        kept = sum(p.obj.n_inserts - p.obj.n_dropped for p in ir._edge_cache)
        expect = 2 * len(ir._local_edges) + len(ir._cross_edges)
        return builds1, builds2, builds3, ranges1 != ranges2, r1, r2, kept, expect

    res = run_spmd(prog, nodes=1, gpus_per_node=1)
    builds1, builds2, builds3, repartitioned, r1, r2, kept, expect = res.values[0]
    assert repartitioned
    assert (builds1, builds2, builds3) == (1, 2, 2)
    np.testing.assert_array_equal(r1, r2)  # bit-identical across the rebuild
    np.testing.assert_allclose(r1, _reference(), rtol=1e-12)
    assert kept == expect


def test_device_ranges_must_tile_reduction_space():
    """A broken adaptive split (dropped or double-covered nodes) must be
    rejected before it can silently corrupt results."""

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        ir._partitioner.split = lambda n: [n - 1, 0]  # loses the last node
        ir.start()

    with pytest.raises(ValidationError, match="reduction\\s+space"):
        run_spmd(prog, nodes=1, gpus_per_node=1)
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        ir = env.get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(EDGES, NODES, WEIGHTS)
        ir.start()
        r1 = ir.get_local_reduction()[:, 0].copy()
        # rebuild connectivity with reversed edges (same reduction result)
        ir.set_mesh(EDGES[:, ::-1].copy(), NODES, -WEIGHTS)
        ir.start()
        r2 = ir.get_local_reduction()[:, 0].copy()
        lo, hi = ir.local_node_range
        return lo, hi, r1, r2

    res = run_spmd(prog, nodes=2)
    got1 = np.zeros(N)
    got2 = np.zeros(N)
    for lo, hi, r1, r2 in res.values:
        got1[lo:hi], got2[lo:hi] = r1, r2
    np.testing.assert_allclose(got1, _reference())
    # Reversing both the edge direction and the weight sign negates the
    # antisymmetric accumulation: du flips sign, f = (-w)(-du) = w*du, but
    # the +f/-f insertions land on swapped endpoints.
    np.testing.assert_allclose(got2, -_reference())


def test_errors_for_missing_configuration():
    def no_mesh(ctx):
        RuntimeEnv(ctx, "cpu").get_IR().start()

    with pytest.raises(ConfigurationError, match="set_mesh"):
        run_spmd(no_mesh, nodes=1)

    def bad_edges(ctx):
        ir = RuntimeEnv(ctx, "cpu").get_IR()
        ir.set_kernel(_kernel())
        ir.set_mesh(np.zeros((4, 3), dtype=int), NODES)

    with pytest.raises(ConfigurationError, match="edges"):
        run_spmd(bad_edges, nodes=1)
