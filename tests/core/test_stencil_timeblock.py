"""Temporal blocking: bit-identity, latency-preset wins, auto-tuning, recovery.

The contract under test (ISSUE 8): for every app and every ``k``, gathered
grids and ``run_until`` residual histories are bit-identical to the
``k=1`` reference — blocking moves the makespan, never the numbers — and
on the latency-dominated preset the makespan strictly shrinks as ``k``
grows, with ``time_block="auto"`` never worse than unblocked.
"""

import numpy as np
import pytest

from repro.apps import heat3d, sobel
from repro.apps.common import parse_time_block
from repro.apps.extra import hotspot, jacobi2d
from repro.cluster.presets import laptop_cluster, latency_cluster
from repro.core.api import StencilKernel, shifted
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.sim.engine import spmd_run
from repro.util.errors import ConfigurationError, ValidationError
from tests.conftest import run_spmd

WORK = WorkModel(name="tb", flops_per_elem=8, bytes_per_elem=32)
GRID2D = np.random.default_rng(7).random((28, 24))


def _avg2d(src, dst, region, param):
    dst[region] = 0.25 * (
        shifted(src, region, (1, 0)) + shifted(src, region, (-1, 0))
        + shifted(src, region, (0, 1)) + shifted(src, region, (0, -1))
    )


def _wide(src, dst, region, param):
    """halo=2 kernel: second-neighbour average."""
    dst[region] = 0.5 * (shifted(src, region, (2, 0)) + shifted(src, region, (0, -2)))


def _program(grid, apply, halo=1, iters=5, mix="cpu", time_block=1, **st_opts):
    def prog(ctx):
        env = RuntimeEnv(ctx, mix)
        st = env.get_stencil(**st_opts)
        st.configure(StencilKernel(apply, halo, WORK), grid.shape, time_block=time_block)
        st.set_global_grid(grid)
        st.run(iters)
        return st.gather_global()

    return prog


# -- raw-runtime bit-identity -------------------------------------------------

@pytest.mark.parametrize("k", [2, 3, 4])
@pytest.mark.parametrize("mix", ["cpu", "cpu+2gpu"])
def test_blocked_grid_bit_identical(k, mix):
    # iters=5 is never a multiple of k here, so the partial final block
    # (full-depth exchange, shrunk sweep regions) is always exercised too.
    ref = run_spmd(_program(GRID2D, _avg2d, mix=mix), gpus_per_node=2).values[0]
    res = run_spmd(
        _program(GRID2D, _avg2d, mix=mix, time_block=k), gpus_per_node=2
    ).values[0]
    np.testing.assert_array_equal(res, ref)


def test_wide_halo_blocked_bit_identical():
    ref = run_spmd(_program(GRID2D, _wide, halo=2, iters=4)).values[0]
    res = run_spmd(_program(GRID2D, _wide, halo=2, iters=4, time_block=2)).values[0]
    np.testing.assert_array_equal(res, ref)


def test_hotspot_static_fields_blocked():
    # Static coefficient fields are padded to the deep halo; the power map
    # must keep feeding the widened sweep regions bit-identically.
    config = hotspot.HotspotConfig(shape=(32, 32), iterations=6)
    ref = run_spmd(lambda ctx: hotspot.rank_program(ctx, config)).values[0]
    res = run_spmd(
        lambda ctx: hotspot.rank_program(ctx, config, time_block=2)
    ).values[0]
    np.testing.assert_array_equal(res, ref)
    np.testing.assert_array_equal(ref, hotspot.sequential_reference(config))


# -- app-level bit-identity ---------------------------------------------------

@pytest.mark.parametrize("k", [2, 4])
def test_heat3d_app_bit_identical(k):
    cl = laptop_cluster(2)
    config = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=5)
    ref = heat3d.run(cl, config, mix="cpu")
    res = heat3d.run(cl, config, mix="cpu", time_block=k)
    np.testing.assert_array_equal(res.result, ref.result)
    assert res.spmd.values[0]["time_block"] == k


@pytest.mark.parametrize("k", [2, 4])
def test_sobel_app_bit_identical(k):
    cl = laptop_cluster(2)
    config = sobel.SobelConfig(functional_shape=(64, 48), simulated_steps=5)
    ref = sobel.run(cl, config, mix="cpu")
    res = sobel.run(cl, config, mix="cpu", time_block=k)
    np.testing.assert_array_equal(res.result, ref.result)


@pytest.mark.parametrize("k", [2, 4])
def test_jacobi2d_run_until_history_bit_identical(k):
    # 207 iterations to converge — odd, so both k=2 and k=4 hit the
    # tolerance mid-block and exercise the rewind path; the residual
    # history must still stop at exactly the k=1 iteration.
    cl = laptop_cluster(2)
    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=5e-4, max_iters=400)
    ref = jacobi2d.run(cl, config)
    res = jacobi2d.run(cl, config, time_block=k)
    assert res.spmd.values[0]["iterations"] == ref.spmd.values[0]["iterations"]
    assert res.spmd.values[0]["residuals"] == ref.spmd.values[0]["residuals"]
    np.testing.assert_array_equal(res.result, ref.result)


def test_jacobi2d_fixed_iteration_partial_block():
    # max_iters not a multiple of k, tol out of reach: the loop must land
    # exactly on max_iters with a partial final block.
    cl = laptop_cluster(2)
    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=1e-12, max_iters=10)
    ref = jacobi2d.run(cl, config)
    for k in (3, 4):
        res = jacobi2d.run(cl, config, time_block=k)
        assert res.spmd.values[0]["iterations"] == 10
        assert res.spmd.values[0]["residuals"] == ref.spmd.values[0]["residuals"]
        np.testing.assert_array_equal(res.result, ref.result)


# -- latency-preset performance ----------------------------------------------

def test_jacobi2d_latency_monotone_and_auto():
    cl = latency_cluster(2)
    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=1e-12, max_iters=24)
    spans = {
        k: jacobi2d.run(cl, config, mix="cpu", time_block=k).makespan for k in (1, 2, 4)
    }
    assert spans[4] < spans[2] < spans[1]
    auto = jacobi2d.run(cl, config, mix="cpu", time_block="auto")
    assert auto.makespan <= spans[1]
    assert auto.spmd.values[0]["time_block"] > 1


def test_heat3d_sobel_latency_monotone():
    # Unscaled grids (shape == functional_shape): at the paper's 512^3 /
    # 32768^2 model scale the per-sweep compute dwarfs any per-message
    # alpha, and blocking correctly does not win — the latency-dominated
    # regime the preset exists for is small faces on a high-alpha link.
    cl = latency_cluster(2)
    hcfg = heat3d.Heat3DConfig(
        shape=(24, 24, 24), functional_shape=(24, 24, 24), simulated_steps=8
    )
    scfg = sobel.SobelConfig(
        shape=(64, 48), functional_shape=(64, 48), simulated_steps=8
    )
    for mod, cfg in ((heat3d, hcfg), (sobel, scfg)):
        spans = {
            k: mod.run(cl, cfg, mix="cpu", time_block=k).spmd.makespan for k in (1, 2, 4)
        }
        assert spans[4] < spans[2] < spans[1], (mod.__name__, spans)


def test_auto_matches_k1_when_blocking_cannot_win():
    # On the bandwidth-rich laptop preset with this workload the tuner may
    # pick any k, but the contract is "never worse than unblocked".
    cl = laptop_cluster(2)
    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=1e-12, max_iters=12)
    base = jacobi2d.run(cl, config, mix="cpu").makespan
    auto = jacobi2d.run(cl, config, mix="cpu", time_block="auto")
    assert auto.makespan <= base


# -- checkpoint / crash-restart ----------------------------------------------

def test_heat3d_crash_restart_mid_block_bit_identical():
    from repro.faults import FaultPlan, RankCrash

    cl = laptop_cluster(4)
    config = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=12)
    clean = heat3d.run(cl, config, mix="cpu")
    blocked = heat3d.run(cl, config, mix="cpu", time_block=4, checkpoint_every=1)
    np.testing.assert_array_equal(blocked.result, clean.result)
    plan = FaultPlan(
        seed=1,
        crashes=[
            RankCrash(rank=1, at_time=blocked.spmd.makespan * 0.5, restart_cost=0.005)
        ],
    )
    res = heat3d.run(
        cl,
        config,
        mix="cpu",
        time_block=4,
        checkpoint_every=1,
        reliable=True,
        fault_plan=plan,
    )
    assert plan.stats.crashes_consumed == 1
    assert res.spmd.values[0]["recoveries"] == 1
    np.testing.assert_array_equal(res.result, clean.result)


def _jacobi_checkpoint_prog(config, time_block, checkpoint_every, reliable=False):
    def prog(ctx):
        if reliable:
            from repro.comm.reliable import ReliableComm

            ctx.comm = ReliableComm(ctx.comm)
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil_reduce()
        st.configure(
            jacobi2d.make_kernel(),
            config.shape,
            parameter=jacobi2d._grid_spacing_sq(config),
            static_fields={"rhs": jacobi2d.generate_rhs(config)},
            time_block=time_block,
        )
        st.set_global_grid(np.zeros(config.shape))
        from repro.core.checkpoint import CheckpointManager

        mgr = CheckpointManager(ctx, every=checkpoint_every)
        res = st.run_until(max_iters=config.max_iters, tol=config.tol, checkpoint=mgr)
        grid = st.gather_global()
        env.finalize()
        if reliable:
            ctx.comm.flush()
        return {
            "grid": grid,
            "iterations": res.iterations,
            "residuals": res.residuals,
            "recoveries": mgr.recoveries,
        }

    return prog


def test_jacobi2d_checkpointed_blocked_crash_bit_identical():
    from repro.faults import FaultPlan, RankCrash

    cl = laptop_cluster(2)
    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=5e-4, max_iters=240)
    ref = jacobi2d.run(cl, config)
    clean = spmd_run(_jacobi_checkpoint_prog(config, 4, 5), cl)
    assert clean.values[0]["residuals"] == ref.spmd.values[0]["residuals"]
    plan = FaultPlan(
        seed=1,
        crashes=[RankCrash(rank=1, at_time=clean.makespan * 0.5, restart_cost=0.005)],
    )
    res = spmd_run(
        _jacobi_checkpoint_prog(config, 4, 5, reliable=True), cl, fault_plan=plan
    )
    assert plan.stats.crashes_consumed == 1
    assert res.values[0]["recoveries"] == 1
    assert res.values[0]["iterations"] == ref.spmd.values[0]["iterations"]
    assert res.values[0]["residuals"] == ref.spmd.values[0]["residuals"]
    np.testing.assert_array_equal(res.values[0]["grid"], ref.result)


# -- observability ------------------------------------------------------------

def test_time_block_gauges_on_trace():
    res = run_spmd(_program(GRID2D, _avg2d, time_block=4), trace=True)
    gauges = res.traces[0].gauges
    assert gauges["stencil.time_block"] == 4.0
    assert gauges["halo.redundant_flops"] > 0.0
    base = run_spmd(_program(GRID2D, _avg2d), trace=True)
    assert base.traces[0].gauges["stencil.time_block"] == 1.0


# -- validation ---------------------------------------------------------------

def test_time_block_must_be_positive():
    with pytest.raises(ConfigurationError, match="time_block must be >= 1"):
        run_spmd(_program(GRID2D, _avg2d, time_block=0), nodes=1)


def test_time_block_rejects_unknown_string():
    with pytest.raises(ConfigurationError, match="'auto'"):
        run_spmd(_program(GRID2D, _avg2d, time_block="fastest"), nodes=1)


def test_time_block_needs_room_for_deep_strips():
    # 2 ranks split axis 0 of a 28-row grid: ext 14 < 2*k*h for k=8.
    with pytest.raises(ConfigurationError, match="2\\*time_block\\*halo"):
        run_spmd(_program(GRID2D, _avg2d, time_block=8))


def test_run_until_rejects_on_value_with_blocking():
    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=1e-12, max_iters=8)

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil_reduce()
        st.configure(
            jacobi2d.make_kernel(),
            config.shape,
            parameter=jacobi2d._grid_spacing_sq(config),
            static_fields={"rhs": jacobi2d.generate_rhs(config)},
            time_block=2,
        )
        st.set_global_grid(np.zeros(config.shape))
        st.run_until(max_iters=8, tol=None, on_value=lambda v: None)

    with pytest.raises(ConfigurationError, match="on_value"):
        run_spmd(prog, nodes=1)


def test_exchange_fields_validated_at_configure():
    def prog_with(exchange_fields):
        def prog(ctx):
            env = RuntimeEnv(ctx, "cpu")
            st = env.get_stencil()
            st.configure(
                StencilKernel(_avg2d, 1, WORK),
                GRID2D.shape,
                static_fields={"v": np.zeros(GRID2D.shape)},
                exchange_fields=exchange_fields,
            )

        return prog

    with pytest.raises(ConfigurationError, match="duplicate exchange field 'v'"):
        run_spmd(prog_with(("v", "v")), nodes=1)
    with pytest.raises(
        ConfigurationError, match="exchange field 'w' is not a configured static field"
    ):
        run_spmd(prog_with(("w",)), nodes=1)


def test_parse_time_block():
    assert parse_time_block("4") == 4
    assert parse_time_block(" AUTO ") == "auto"
    assert parse_time_block(3) == 3
    for bad in ("0", "-2", "fast", 0):
        with pytest.raises(ValidationError):
            parse_time_block(bad)


# -- backend parity -----------------------------------------------------------

def test_blocked_run_identical_across_backends():
    cl = laptop_cluster(2)
    config = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=5)
    t = heat3d.run(cl, config, mix="cpu", time_block=4, backend="threads")
    p = heat3d.run(cl, config, mix="cpu", time_block=4, backend="processes", workers=2)
    np.testing.assert_array_equal(p.result, t.result)
    assert repr(p.spmd.makespan) == repr(t.spmd.makespan)
