"""Dynamic chunk scheduler."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.core.scheduler import ChunkScheduler
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel
from repro.util.errors import SchedulingError, ValidationError

WORK = WorkModel(name="w", flops_per_elem=800, bytes_per_elem=4, cpu_efficiency=1.0, gpu_efficiency=1.0)


def _node():
    return laptop_cluster(num_nodes=1, cores=4, gpus_per_node=1).node


def _cpu():
    return CPUDevice(_node().cpu)


def _gpu():
    return GPUDevice(_node().gpus[0])


def test_all_elements_processed_exactly_once():
    seen = np.zeros(10_000, dtype=int)

    def exec_fn(device, start, n):
        seen[start : start + n] += 1

    sched = ChunkScheduler([_cpu()])
    report = sched.run(WORK, 10_000, 128, exec_fn=exec_fn)
    assert (seen == 1).all()
    assert sum(w.elems for w in report.workers) == 10_000


def test_makespan_reflects_parallelism():
    cpu = _cpu()
    solo = ChunkScheduler([cpu]).run(WORK, 40_000, 256)
    # 4 cores vs 1 core timing: compare against a single-core device.
    from dataclasses import replace

    one_core = CPUDevice(replace(_node().cpu, cores=1))
    single = ChunkScheduler([one_core]).run(WORK, 40_000, 256)
    assert solo.elapsed < single.elapsed / 3  # near-4x with some tail


def test_gpu_gets_larger_share_when_faster():
    # Chunks must be large enough that kernel-launch overhead does not mask
    # the GPU's raw speed advantage (200 GF vs 4 x 8 GF).
    report = ChunkScheduler([_cpu(), _gpu()]).run(
        WORK, 200_000, 2048, gpu_chunk_multiplier=8
    )
    by_dev = report.elems_by_device()
    gpu_elems = next(v for k, v in by_dev.items() if "gpu" in k.lower() or "test-gpu" in k)
    cpu_elems = next(v for k, v in by_dev.items() if "cpu" in k.lower() and "gpu" not in k.lower())
    # test-gpu 200 GF vs 4x8 GF cpu: GPU should take the large majority.
    assert gpu_elems > 2 * cpu_elems


def test_heterogeneous_beats_either_alone():
    both = ChunkScheduler([_cpu(), _gpu()]).run(WORK, 200_000, 512)
    cpu_only = ChunkScheduler([_cpu()]).run(WORK, 200_000, 512)
    gpu_only = ChunkScheduler([_gpu()]).run(WORK, 200_000, 512)
    assert both.elapsed < cpu_only.elapsed
    assert both.elapsed < gpu_only.elapsed


def test_time_scale_multiplies_cost():
    fast = ChunkScheduler([_cpu()]).run(WORK, 1_000, 100, time_scale=1.0)
    slow = ChunkScheduler([_cpu()]).run(WORK, 1_000, 100, time_scale=10.0)
    assert slow.elapsed == pytest.approx(10 * fast.elapsed, rel=0.05)


def test_start_offset_respected():
    report = ChunkScheduler([_cpu()]).run(WORK, 1_000, 100, start=5.0)
    assert report.start == 5.0
    assert report.makespan > 5.0
    assert all(w.finish >= 5.0 for w in report.workers)


def test_zero_elements_is_noop():
    report = ChunkScheduler([_cpu()]).run(WORK, 0, 100, start=1.0)
    assert report.makespan == 1.0
    assert all(w.elems == 0 for w in report.workers)


def test_load_imbalance_metric():
    report = ChunkScheduler([_cpu()]).run(WORK, 10_000, 100)
    assert 0.0 <= report.load_imbalance() < 0.5


def test_load_imbalance_formula():
    # Pin the exact formula: (makespan - mean finish) / (makespan - start).
    # Offset start so a "/ makespan" regression would show immediately.
    from repro.core.scheduler import ScheduleReport, WorkerReport

    dev = _cpu()
    report = ScheduleReport(
        start=2.0,
        makespan=6.0,
        workers=[
            WorkerReport(name="a", device=dev, finish=6.0),
            WorkerReport(name="b", device=dev, finish=4.0),
        ],
    )
    # mean finish = 5.0 -> (6 - 5) / (6 - 2) = 0.25, not (6 - 5) / 6.
    assert report.load_imbalance() == pytest.approx(0.25)

    even = ScheduleReport(
        start=2.0,
        makespan=6.0,
        workers=[WorkerReport(name="a", device=dev, finish=6.0)],
    )
    assert even.load_imbalance() == 0.0


def test_validation():
    sched = ChunkScheduler([_cpu()])
    with pytest.raises(ValidationError):
        sched.run(WORK, -1, 100)
    with pytest.raises(ValidationError):
        sched.run(WORK, 100, 0)
    with pytest.raises(ValidationError):
        sched.run(WORK, 100, 10, time_scale=0)
    with pytest.raises(ValidationError):
        sched.run(WORK, 100, 10, gpu_chunk_multiplier=0)
    with pytest.raises(SchedulingError):
        ChunkScheduler([])
    with pytest.raises(SchedulingError):
        ChunkScheduler([object()]).run(WORK, 10, 5)
