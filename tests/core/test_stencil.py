"""Stencil runtime: decomposition, halo exchange, and device splitting."""

import numpy as np
import pytest

from repro.core.api import StencilKernel, shifted
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd

WORK = WorkModel(name="st", flops_per_elem=8, bytes_per_elem=32)
GRID2D = np.random.default_rng(3).random((28, 24))
GRID3D = np.random.default_rng(4).random((16, 14, 12))


def _avg2d(src, dst, region, param):
    dst[region] = 0.25 * (
        shifted(src, region, (1, 0)) + shifted(src, region, (-1, 0))
        + shifted(src, region, (0, 1)) + shifted(src, region, (0, -1))
    )


def _avg3d(src, dst, region, param):
    dst[region] = (
        shifted(src, region, (1, 0, 0)) + shifted(src, region, (-1, 0, 0))
        + shifted(src, region, (0, 1, 0)) + shifted(src, region, (0, -1, 0))
        + shifted(src, region, (0, 0, 1)) + shifted(src, region, (0, 0, -1))
    ) / 6.0


def _wide(src, dst, region, param):
    """halo=2 kernel: second-neighbour average."""
    dst[region] = 0.5 * (shifted(src, region, (2, 0)) + shifted(src, region, (0, -2)))


def _seq(grid, apply, halo, iters):
    src = np.zeros(tuple(s + 2 * halo for s in grid.shape))
    region = tuple(slice(halo, halo + s) for s in grid.shape)
    src[region] = grid
    dst = np.zeros_like(src)
    for _ in range(iters):
        apply(src, dst, region, None)
        src, dst = dst, src
        mask = np.ones_like(src, dtype=bool)
        mask[region] = False
        src[mask] = 0
    return src[region]


def _program(grid, apply, halo=1, iters=3, mix="cpu+2gpu", dims=None, **st_opts):
    def prog(ctx):
        env = RuntimeEnv(ctx, mix)
        st = env.get_stencil(**st_opts)
        st.configure(StencilKernel(apply, halo, WORK), grid.shape, dims=dims)
        st.set_global_grid(grid)
        st.run(iters)
        return st.gather_global()

    return prog


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_2d_matches_sequential(nodes):
    res = run_spmd(_program(GRID2D, _avg2d), nodes=nodes, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _seq(GRID2D, _avg2d, 1, 3), rtol=1e-12)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_3d_matches_sequential(nodes):
    res = run_spmd(_program(GRID3D, _avg3d), nodes=nodes, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _seq(GRID3D, _avg3d, 1, 3), rtol=1e-12)


def test_wide_halo_kernel():
    res = run_spmd(_program(GRID2D, _wide, halo=2, iters=2), nodes=2, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _seq(GRID2D, _wide, 2, 2), rtol=1e-12)


@pytest.mark.parametrize("mix", ["cpu", "1gpu", "cpu+1gpu", "cpu+2gpu"])
def test_device_mixes_are_numerically_invisible(mix):
    res = run_spmd(_program(GRID2D, _avg2d, mix=mix), nodes=2, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _seq(GRID2D, _avg2d, 1, 3), rtol=1e-12)


def test_explicit_dims():
    res = run_spmd(_program(GRID2D, _avg2d, dims=(4, 1)), nodes=4, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _seq(GRID2D, _avg2d, 1, 3), rtol=1e-12)


@pytest.mark.parametrize("overlap", [True, False])
@pytest.mark.parametrize("tiling", [True, False])
def test_optimizations_never_change_numbers(overlap, tiling):
    res = run_spmd(
        _program(GRID2D, _avg2d, overlap=overlap, tiling=tiling), nodes=2, gpus_per_node=2
    )
    np.testing.assert_allclose(res.values[0], _seq(GRID2D, _avg2d, 1, 3), rtol=1e-12)


def test_untiled_costs_more_time():
    tiled = run_spmd(_program(GRID2D, _avg2d, tiling=True), nodes=1, gpus_per_node=2)
    untiled = run_spmd(_program(GRID2D, _avg2d, tiling=False), nodes=1, gpus_per_node=2)
    assert untiled.makespan > tiled.makespan


def test_gather_global_only_at_root():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), GRID2D.shape)
        st.set_global_grid(GRID2D)
        st.step()
        return st.gather_global() is None

    res = run_spmd(prog, nodes=3)
    assert res.values == [False, True, True]


def test_local_interior_shape():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), GRID2D.shape, dims=(2, 1))
        st.set_global_grid(GRID2D)
        return st.local_interior().shape

    res = run_spmd(prog, nodes=2)
    assert res.values == [(14, 24), (14, 24)]


def test_model_shape_scales_time_not_results():
    def prog(ctx, model):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), GRID2D.shape, model_shape=model)
        st.set_global_grid(GRID2D)
        st.run(2)
        return st.gather_global()

    small = run_spmd(prog, nodes=1, kwargs={"model": None})
    big = run_spmd(prog, nodes=1, kwargs={"model": (280, 240)})
    np.testing.assert_allclose(small.values[0], big.values[0])
    assert big.makespan > 20 * small.makespan


def test_too_many_processes_rejected():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), (4, 4), dims=(4, 1))

    with pytest.raises(ConfigurationError, match="halo"):
        run_spmd(prog, nodes=4)


def test_grid_shape_mismatch():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), (10, 10))
        st.set_global_grid(np.zeros((9, 10)))

    with pytest.raises(ConfigurationError, match="shape"):
        run_spmd(prog, nodes=1)


def test_unconfigured_errors():
    def prog(ctx):
        RuntimeEnv(ctx, "cpu").get_stencil().step()

    with pytest.raises(ConfigurationError, match="configure"):
        run_spmd(prog, nodes=1)

    def bad_iters(ctx):
        st = RuntimeEnv(ctx, "cpu").get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), GRID2D.shape)
        st.set_global_grid(GRID2D)
        st.run(0)

    with pytest.raises(ConfigurationError, match="iterations"):
        run_spmd(bad_iters, nodes=1)


def test_halo_values_come_from_neighbors_not_local_data():
    """A rank computing with stale halos would give wrong borders; compare a
    column that crosses the process boundary against the reference."""
    res = run_spmd(_program(GRID2D, _avg2d, dims=(2, 1), iters=4), nodes=2, gpus_per_node=2)
    ref = _seq(GRID2D, _avg2d, 1, 4)
    boundary_rows = slice(12, 16)  # spans the split at row 14
    np.testing.assert_allclose(res.values[0][boundary_rows], ref[boundary_rows], rtol=1e-12)


def test_set_global_grid_dtype_guard():
    """Kind-incompatible grids must fail loudly, not silently truncate."""

    def int_into_float(ctx):
        st = RuntimeEnv(ctx, "cpu").get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), (10, 10))
        st.set_global_grid(np.arange(100).reshape(10, 10))  # int -> float: fine
        return st.local_interior().dtype

    assert run_spmd(int_into_float, nodes=1).values[0] == np.dtype(np.float64)

    def float_into_int(ctx):
        st = RuntimeEnv(ctx, "cpu").get_stencil()
        kernel = StencilKernel(_avg2d, 1, WORK, dtype=np.dtype(np.int64))
        st.configure(kernel, (10, 10))
        st.set_global_grid(np.random.default_rng(0).random((10, 10)))

    with pytest.raises(ConfigurationError, match="dtype"):
        run_spmd(float_into_int, nodes=1)


def test_snapshot_state_includes_partitioner_profile():
    """A restored runtime must resume with the adaptive split it had, not
    re-profile from an even split (the crash-restart divergence bug)."""

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        st = env.get_stencil()
        st.configure(StencilKernel(_avg2d, 1, WORK), GRID2D.shape)
        st.set_global_grid(GRID2D)
        st.run(2)  # step 1 profiles the devices
        assert st._partitioner.profiled
        state = st.snapshot_state()
        assert state["partitioner"]["speeds"] is not None

        # A freshly rebuilt runtime (the crash-restart path) starts
        # unprofiled; restoring the snapshot must bring the profile back.
        st2 = env.get_stencil()
        st2.configure(StencilKernel(_avg2d, 1, WORK), GRID2D.shape)
        assert not st2._partitioner.profiled
        st2.restore_state(state)
        assert st2._partitioner.profiled
        np.testing.assert_array_equal(
            st2._partitioner.split(GRID2D.shape[0]),
            st._partitioner.split(GRID2D.shape[0]),
        )
        return True

    assert run_spmd(prog, nodes=1).values == [True]


def test_snapshot_state_roundtrips_exchange_fields():
    def prog(ctx):
        def kern(src, dst, region, param):
            v = param["v"]
            dst[region] = src[region] + v[region]
            v[region] += 1.0

        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(
            StencilKernel(kern, 1, WORK),
            GRID2D.shape,
            static_fields={"v": np.zeros(GRID2D.shape)},
            exchange_fields=("v",),
        )
        st.set_global_grid(GRID2D)
        st.run(2)
        state = st.snapshot_state()
        saved_v = st._fields["v"].copy()
        st.run(3)  # keeps mutating v
        assert not np.array_equal(st._fields["v"], saved_v)
        st.restore_state(state)
        np.testing.assert_array_equal(st._fields["v"], saved_v)
        # The snapshot is a copy, not a view of the live field.
        assert state["fields"]["v"] is not st._fields["v"]
        return True

    assert run_spmd(prog, nodes=1).values == [True]


@pytest.mark.parametrize("nodes", [2, 4])
def test_multirank_result_bitwise_identical_to_sequential(nodes):
    # Stronger than allclose: halo strips travel through the pooled
    # send/receive buffers and land via out= into strided slabs, and the
    # interior is computed by one fused apply.  All of that must reproduce
    # the single-array sequential sweep bit for bit, since every update is
    # the same elementwise expression over exactly the same neighbor bytes.
    res = run_spmd(_program(GRID2D, _avg2d), nodes=nodes, gpus_per_node=2)
    np.testing.assert_array_equal(res.values[0], _seq(GRID2D, _avg2d, 1, 3))
