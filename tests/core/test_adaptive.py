"""Adaptive device partitioner (paper SIII-D)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.adaptive import AdaptivePartitioner
from repro.util.errors import SchedulingError, ValidationError


def test_even_split_before_profiling():
    p = AdaptivePartitioner(3)
    assert not p.profiled
    np.testing.assert_array_equal(p.split(9), [3, 3, 3])
    np.testing.assert_array_equal(p.split(10), [4, 3, 3])


def test_proportional_after_observation():
    p = AdaptivePartitioner(2)
    # device 1 processed twice the elements in the same time -> 2x speed.
    p.observe(np.array([100, 200]), np.array([1.0, 1.0]))
    assert p.profiled
    np.testing.assert_array_equal(p.split(30), [10, 20])


def test_paper_formula_n_times_si_over_sum():
    p = AdaptivePartitioner(3)
    p.observe(np.array([10, 20, 30]), np.array([1.0, 1.0, 1.0]))
    np.testing.assert_array_equal(p.split(600), [100, 200, 300])


@given(st.integers(0, 10_000), st.integers(1, 8))
def test_split_always_sums_to_total(total, n):
    p = AdaptivePartitioner(n)
    counts = p.split(total)
    assert counts.sum() == total
    assert (counts >= 0).all()


@given(
    st.integers(1, 10_000),
    st.lists(st.floats(0.1, 100, allow_nan=False), min_size=2, max_size=6),
)
def test_split_proportional_sums_to_total(total, speeds):
    p = AdaptivePartitioner(len(speeds))
    p.observe(np.array(speeds) * 10, np.full(len(speeds), 10.0))
    counts = p.split(total)
    assert counts.sum() == total


def test_idle_device_keeps_previous_speed():
    p = AdaptivePartitioner(2)
    p.observe(np.array([100, 300]), np.array([1.0, 1.0]))
    p.observe(np.array([50, 0]), np.array([1.0, 0.0]))  # device 1 idle this step
    np.testing.assert_array_equal(p.split(700), [100, 600])


def test_idle_device_without_history_gets_mean():
    p = AdaptivePartitioner(2)
    p.observe(np.array([100, 0]), np.array([1.0, 0.0]))
    np.testing.assert_array_equal(p.split(10), [5, 5])


def test_observe_validation():
    p = AdaptivePartitioner(2)
    with pytest.raises(ValidationError):
        p.observe(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValidationError):
        p.observe(np.array([1.0, 1.0]), np.array([1.0, -1.0]))
    with pytest.raises(SchedulingError):
        p.observe(np.array([0.0, 0.0]), np.array([0.0, 0.0]))


def test_constructor_validation():
    with pytest.raises(ValidationError):
        AdaptivePartitioner(0)
    p = AdaptivePartitioner(1)
    with pytest.raises(ValidationError):
        p.split(-1)


def test_speeds_property_returns_copy():
    p = AdaptivePartitioner(2)
    p.observe(np.array([10, 10]), np.array([1.0, 2.0]))
    s = p.speeds
    s[0] = 999
    assert p.speeds[0] != 999
    assert AdaptivePartitioner(2).speeds is None


def test_largest_remainder_ties_are_deterministic():
    """Equal fractional remainders must break ties identically every call.

    With 4 equally fast devices and a total of 4k+2 elements, every
    device has remainder 0.5 and exactly two get the extra element —
    which two is an argsort tie, and the answer must be stable (SPMD
    ranks each compute their own split; divergence would desynchronize
    device charges across reruns and backends).
    """
    p = AdaptivePartitioner(4)
    p.observe(np.array([10, 10, 10, 10]), np.array([1.0, 1.0, 1.0, 1.0]))
    first = p.split(10)
    assert first.sum() == 10
    for _ in range(5):
        p2 = AdaptivePartitioner(4)
        p2.observe(np.array([10, 10, 10, 10]), np.array([1.0, 1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(p2.split(10), first)
    # np.argsort is stable for equal keys: the extra elements go to the
    # lowest-indexed tied devices.
    np.testing.assert_array_equal(first, [3, 3, 2, 2])


def test_split_cache_reused_and_invalidated_on_observe():
    p = AdaptivePartitioner(2)
    p.observe(np.array([100, 300]), np.array([1.0, 1.0]))
    np.testing.assert_array_equal(p.split(100), [25, 75])
    assert p._split_cache is not None and p._split_cache[0] == 100
    cached = p._split_cache[1]
    # Same total hits the memo (fresh copy, same counts, same identity
    # of the cached array).
    np.testing.assert_array_equal(p.split(100), [25, 75])
    assert p._split_cache[1] is cached
    # Mutating the returned copy must not poison the cache.
    out = p.split(100)
    out[0] = 999
    np.testing.assert_array_equal(p.split(100), [25, 75])
    # A new observation invalidates the memo and changes the answer.
    p.observe(np.array([100, 100]), np.array([1.0, 1.0]))
    assert p._split_cache is None
    np.testing.assert_array_equal(p.split(100), [50, 50])


def test_state_dict_roundtrip_preserves_profile_and_cache():
    p = AdaptivePartitioner(2)
    p.observe(np.array([100, 300]), np.array([1.0, 1.0]))
    p.split(100)  # warm the memo
    state = p.state_dict()

    q = AdaptivePartitioner(2)
    q.load_state(state)
    assert q.profiled
    np.testing.assert_array_equal(q.split(100), p.split(100))
    np.testing.assert_array_equal(q.speeds, p.speeds)
    # The saved state is independent of both partitioners.
    state["speeds"][0] = -1
    assert p.speeds[0] != -1 and q.speeds[0] != -1


def test_state_dict_roundtrip_unprofiled():
    state = AdaptivePartitioner(3).state_dict()
    assert state["speeds"] is None and state["split_cache"] is None
    q = AdaptivePartitioner(3)
    q.observe(np.array([1, 2, 3]), np.array([1.0, 1.0, 1.0]))
    q.load_state(state)  # restoring a pre-profile snapshot forgets the profile
    assert not q.profiled
    np.testing.assert_array_equal(q.split(9), [3, 3, 3])
