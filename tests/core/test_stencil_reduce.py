"""Fused stencil+reduce runtime: bit-identity, overlap, checkpointing."""

import math

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.core.api import StencilKernel, shifted
from repro.core.checkpoint import CheckpointManager
from repro.core.env import RuntimeEnv
from repro.core.stencil_reduce import ConvergenceResult
from repro.device.work import WorkModel
from repro.faults.plan import FaultPlan, RankCrash
from repro.sim.engine import spmd_run
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd

WORK = WorkModel(name="st", flops_per_elem=8, bytes_per_elem=32)
GRID = np.random.default_rng(3).random((28, 24))
TOL = 0.5
MAX_ITERS = 200


def _avg2d(src, dst, region, param):
    dst[region] = 0.25 * (
        shifted(src, region, (1, 0)) + shifted(src, region, (-1, 0))
        + shifted(src, region, (0, 1)) + shifted(src, region, (0, -1))
    )


def _kernel():
    return StencilKernel(_avg2d, 1, WORK)


def fused_program(ctx, tol=TOL, max_iters=MAX_ITERS, mix="cpu+2gpu", **st_opts):
    """The runtime under test: one fused step+combine per iteration."""
    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil_reduce(**st_opts)
    st.configure(_kernel(), GRID.shape)
    st.set_global_grid(GRID)
    res = st.run_until(max_iters=max_iters, tol=tol)
    grid = st.gather_global()
    env.finalize()
    return {
        "grid": grid,
        "iterations": res.iterations,
        "residuals": res.residuals,
        "converged": res.converged,
    }


def reference_program(ctx, tol=TOL, max_iters=MAX_ITERS, mix="cpu+2gpu"):
    """The naive composition: step, then a standalone blocking allreduce."""
    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil()
    st.configure(_kernel(), GRID.shape)
    st.set_global_grid(GRID)
    residuals = []
    iterations = 0
    converged = False
    for _ in range(max_iters):
        old = st.local_interior()
        st.step()
        diff = (st.local_interior() - old).ravel()
        total = env.comm.allreduce(float(np.dot(diff, diff)), op="sum")
        residuals.append(float(math.sqrt(total)))
        iterations += 1
        if residuals[-1] <= tol:
            converged = True
            break
    grid = st.gather_global()
    env.finalize()
    return {
        "grid": grid,
        "iterations": iterations,
        "residuals": residuals,
        "converged": converged,
    }


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_run_until_matches_reference_loop_bitwise(nodes):
    """Same iteration count, same residual sequence (exact float equality),
    same final grid — the fusion may only move virtual time, never bits."""
    fused = run_spmd(fused_program, nodes=nodes, gpus_per_node=2)
    ref = run_spmd(reference_program, nodes=nodes, gpus_per_node=2)
    f, r = fused.values[0], ref.values[0]
    assert f["iterations"] == r["iterations"]
    assert f["converged"] and r["converged"]
    assert f["residuals"] == r["residuals"]  # bitwise, not allclose
    np.testing.assert_array_equal(f["grid"], r["grid"])


def test_fused_loop_is_faster_in_virtual_time():
    """The combine overlaps the next step's halo flight: the fused loop
    reaches the same bits sooner than step-then-allreduce."""
    fused = run_spmd(fused_program, nodes=4, gpus_per_node=2)
    ref = run_spmd(reference_program, nodes=4, gpus_per_node=2)
    assert fused.makespan < ref.makespan


def test_early_convergence_drains_speculation_deterministically():
    """Converging mid-loop leaves a speculative exchange in flight; the
    drain must keep the run repeatable bit for bit."""
    a = run_spmd(fused_program, nodes=4, gpus_per_node=2)
    b = run_spmd(fused_program, nodes=4, gpus_per_node=2)
    assert a.values[0]["converged"]
    assert a.values[0]["iterations"] < MAX_ITERS
    assert repr(a.makespan) == repr(b.makespan)
    assert a.times == b.times
    np.testing.assert_array_equal(a.values[0]["grid"], b.values[0]["grid"])


def test_counters_one_payload_per_neighbor_per_step():
    """Each rank sends exactly one coalesced message per neighbour per
    step (speculative sends belong to the step that consumes them)."""
    steps = 5
    res = run_spmd(
        fused_program,
        nodes=2,
        gpus_per_node=2,
        kwargs={"tol": None, "max_iters": steps},
        trace=True,
    )
    for tr in res.traces:
        counters = tr.counters
        # dims=(2, 1): one neighbour each, one message per step.
        assert counters["halo.msgs"] == steps
        assert counters["halo.strips"] == steps  # single-array layout
        assert counters["stencil_reduce.combines"] == steps
        assert counters["stencil_reduce.steps"] == steps
    assert not res.values[0]["converged"]  # tol=None never stops early


def test_fixed_step_mode_runs_exactly_max_iters():
    res = run_spmd(
        fused_program, nodes=2, gpus_per_node=2, kwargs={"tol": None, "max_iters": 4}
    )
    v = res.values[0]
    assert v["iterations"] == 4
    assert len(v["residuals"]) == 4
    assert not v["converged"]


def test_max_reduce_op_matches_numpy():
    """Non-sum combine path: max |update| across ranks, default float
    residual_fn."""

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil_reduce()
        st.configure(_kernel(), GRID.shape)
        st.set_global_grid(GRID)
        res = st.run_until(
            max_iters=3,
            tol=None,
            reduce_op="max",
            reduce_fn=lambda old, new: float(np.abs(new - old).max()),
        )
        env.finalize()
        return res.residuals

    res = run_spmd(prog, nodes=2)
    # Sequential twin of the same loop.
    src = np.zeros(tuple(s + 2 for s in GRID.shape))
    region = tuple(slice(1, 1 + s) for s in GRID.shape)
    src[region] = GRID
    dst = np.zeros_like(src)
    expected = []
    for _ in range(3):
        _avg2d(src, dst, region, None)
        expected.append(float(np.abs(dst[region] - src[region]).max()))
        src, dst = dst, src
        mask = np.ones_like(src, dtype=bool)
        mask[region] = False
        src[mask] = 0
    assert res.values[0] == expected


def checkpointed_program(ctx, every=3):
    env = RuntimeEnv(ctx, "cpu")
    st = env.get_stencil_reduce()
    st.configure(_kernel(), GRID.shape)
    st.set_global_grid(GRID)
    mgr = CheckpointManager(ctx, every=every)
    res = st.run_until(max_iters=MAX_ITERS, tol=TOL, checkpoint=mgr)
    grid = st.gather_global()
    env.finalize()
    return {
        "grid": grid,
        "iterations": res.iterations,
        "residuals": res.residuals,
        "converged": res.converged,
        "recoveries": mgr.recoveries,
    }


def test_checkpointed_loop_matches_uncheckpointed_numerics():
    plain = run_spmd(fused_program, nodes=2, kwargs={"mix": "cpu"})
    ckpt = run_spmd(checkpointed_program, nodes=2)
    p, c = plain.values[0], ckpt.values[0]
    assert c["iterations"] == p["iterations"]
    assert c["residuals"] == p["residuals"]
    np.testing.assert_array_equal(c["grid"], p["grid"])
    assert c["recoveries"] == 0


def test_crash_mid_convergence_recovers_bit_identically():
    """A crash inside run_until rolls back grid + residual history +
    iteration counter together; the recovered run must converge on the
    same iteration with the same residuals and grid."""
    clean = spmd_run(checkpointed_program, laptop_cluster(num_nodes=4))
    plan = FaultPlan(
        seed=1,
        crashes=[
            RankCrash(rank=1, at_time=clean.makespan * 0.5, restart_cost=0.005)
        ],
    )
    res = spmd_run(checkpointed_program, laptop_cluster(num_nodes=4), fault_plan=plan)
    assert plan.stats.crashes_consumed == 1
    for v, c in zip(res.values, clean.values):
        assert v["recoveries"] == 1
        assert v["iterations"] == c["iterations"]
        assert v["residuals"] == c["residuals"]
        assert v["converged"]
    np.testing.assert_array_equal(res.values[0]["grid"], clean.values[0]["grid"])
    assert res.makespan > clean.makespan + 0.005


def test_thread_and_process_backends_bit_identical():
    threads = run_spmd(fused_program, nodes=2, gpus_per_node=2)
    procs = run_spmd(
        fused_program, nodes=2, gpus_per_node=2, backend="processes", workers=2
    )
    assert threads.times == procs.times
    assert threads.values[0]["residuals"] == procs.values[0]["residuals"]
    np.testing.assert_array_equal(threads.values[0]["grid"], procs.values[0]["grid"])


def _reliable_fused(ctx, time_block=1):
    """run_until over the reliable layer — speculation rides a lossy wire."""
    from repro.comm.reliable import ReliableComm

    ctx.comm = ReliableComm(ctx.comm)
    env = RuntimeEnv(ctx, "cpu")
    st = env.get_stencil_reduce()
    st.configure(_kernel(), GRID.shape, time_block=time_block)
    st.set_global_grid(GRID)
    res = st.run_until(max_iters=MAX_ITERS, tol=TOL)
    grid = st.gather_global()
    env.finalize()
    ctx.comm.flush()
    return {"grid": grid, "iterations": res.iterations, "residuals": res.residuals}


@pytest.mark.parametrize("time_block", [1, 4])
def test_speculative_halos_survive_lossy_network(time_block):
    """Drop/delay rules hitting the speculative halo messages (a whole
    block of them when time_block > 1) must leave grids and residual
    histories bit-identical to the fault-free run — retransmits may only
    move virtual time."""
    plain = run_spmd(fused_program, nodes=2, kwargs={"mix": "cpu"})
    clean = run_spmd(lambda ctx: _reliable_fused(ctx, time_block), nodes=2)
    plan = FaultPlan.lossy(seed=5, drop=0.08, dup=0.04, delay=0.1, max_delay=1e-4)
    lossy = run_spmd(
        lambda ctx: _reliable_fused(ctx, time_block), nodes=2, fault_plan=plan
    )
    assert plan.stats.drops > 0 and plan.stats.delays > 0
    for got in (clean.values[0], lossy.values[0]):
        assert got["iterations"] == plain.values[0]["iterations"]
        assert got["residuals"] == plain.values[0]["residuals"]
        np.testing.assert_array_equal(got["grid"], plain.values[0]["grid"])


def _cancel_under_faults(ctx):
    """Speculate, cancel while the halos are (mis)travelling, keep going.

    The cancel drain must keep FIFO hygiene intact: the steps after the
    cancel consume exactly their own halo messages, never a stale
    speculative strip, so the final grid matches the never-speculated run.
    """
    from repro.comm.reliable import ReliableComm

    ctx.comm = ReliableComm(ctx.comm)
    env = RuntimeEnv(ctx, "cpu")
    st = env.get_stencil_reduce()
    st.configure(_kernel(), GRID.shape)
    st.set_global_grid(GRID)
    st.step()
    st.begin_step_early()
    st.cancel_begun_step()
    st.run(3)
    grid = st.gather_global()
    env.finalize()
    ctx.comm.flush()
    return grid


def test_cancel_begun_step_under_faults_keeps_fifo_hygiene():
    clean = run_spmd(_cancel_under_faults, nodes=2).values[0]
    plan = FaultPlan.lossy(seed=9, drop=0.2, dup=0.1, delay=0.2, max_delay=1e-4)
    faulty = run_spmd(_cancel_under_faults, nodes=2, fault_plan=plan).values[0]
    assert plan.stats.drops > 0
    np.testing.assert_array_equal(faulty, clean)


def test_snapshot_with_speculative_exchange_in_flight_rejected():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil_reduce()
        st.configure(_kernel(), GRID.shape)
        st.set_global_grid(GRID)
        st.step()
        st.begin_step_early()
        try:
            st.snapshot_state()
        finally:
            st.cancel_begun_step()

    with pytest.raises(ConfigurationError, match="in flight"):
        run_spmd(prog, nodes=1)


def test_double_prestart_rejected_and_cancel_is_idempotent():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil_reduce()
        st.configure(_kernel(), GRID.shape)
        st.set_global_grid(GRID)
        st.cancel_begun_step()  # nothing in flight: a no-op
        st.begin_step_early()
        try:
            st.begin_step_early()
        except ConfigurationError:
            st.cancel_begun_step()
            st.cancel_begun_step()  # idempotent after the drain
            return True
        return False

    assert run_spmd(prog, nodes=1).values == [True]


def test_validation():
    def bad_reduce_flops(ctx):
        RuntimeEnv(ctx, "cpu").get_stencil_reduce(reduce_flops=-1.0)

    with pytest.raises(ConfigurationError, match="reduce_flops"):
        run_spmd(bad_reduce_flops, nodes=1)

    def bad_max_iters(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil_reduce()
        st.configure(_kernel(), GRID.shape)
        st.set_global_grid(GRID)
        st.run_until(max_iters=0)

    with pytest.raises(ConfigurationError, match="max_iters"):
        run_spmd(bad_max_iters, nodes=1)

    def unconfigured(ctx):
        RuntimeEnv(ctx, "cpu").get_stencil_reduce().run_until(max_iters=1)

    with pytest.raises(ConfigurationError, match="configure"):
        run_spmd(unconfigured, nodes=1)


def test_convergence_result_final_residual():
    r = ConvergenceResult(iterations=2, residuals=[3.0, 1.5])
    assert r.final_residual == 1.5
    with pytest.raises(ConfigurationError, match="no iterations"):
        _ = ConvergenceResult(iterations=0).final_residual
