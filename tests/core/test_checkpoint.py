"""CheckpointManager: cadence, crash recovery, and trace accounting."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.core.checkpoint import FAULT_CATEGORY, CheckpointManager
from repro.faults.plan import FaultPlan, RankCrash
from repro.sim.engine import spmd_run
from repro.util.errors import ValidationError


def _counter_prog(ctx, iterations=10, every=3, step_cost=1e-4):
    """Counting loop: state is one array, every step adds 1 and barriers."""
    state = {"x": np.full(100, float(ctx.rank))}
    mgr = CheckpointManager(ctx, every=every)

    def step(_it):
        state["x"] += 1.0
        ctx.clock.advance(step_cost)
        ctx.comm.barrier()

    execs = mgr.run_iterations(
        iterations,
        step,
        lambda: state["x"].copy(),
        lambda s: np.copyto(state["x"], s),
    )
    return {
        "value": float(state["x"][0]),
        "executions": execs,
        "checkpoints": mgr.checkpoints_taken,
        "recoveries": mgr.recoveries,
    }


def test_clean_run_checkpoints_on_cadence():
    res = spmd_run(_counter_prog, laptop_cluster(num_nodes=2))
    for rank, v in enumerate(res.values):
        assert v["value"] == rank + 10
        assert v["executions"] == 10
        # Snapshots at iterations 0, 3, 6, 9.
        assert v["checkpoints"] == 4
        assert v["recoveries"] == 0


def test_crash_recovers_from_last_checkpoint():
    plan = FaultPlan(
        seed=1, crashes=[RankCrash(rank=1, at_time=4.5e-4, restart_cost=0.01)]
    )
    res = spmd_run(_counter_prog, laptop_cluster(num_nodes=4), fault_plan=plan)
    clean = spmd_run(_counter_prog, laptop_cluster(num_nodes=4))
    for v, c in zip(res.values, clean.values):
        # Crash between checkpoint 3 (t=3e-4ish) and the next boundary:
        # iterations 3..4 are re-executed, final value unchanged.
        assert v["value"] == c["value"]
        assert v["executions"] > c["executions"]
        assert v["recoveries"] == 1
    assert res.makespan > clean.makespan + 0.01  # restart_cost visible
    assert plan.stats.crashes_consumed == 1


def test_crash_run_is_deterministic():
    def run():
        plan = FaultPlan(
            seed=1, crashes=[RankCrash(rank=1, at_time=4.5e-4, restart_cost=0.01)]
        )
        return spmd_run(_counter_prog, laptop_cluster(num_nodes=4), fault_plan=plan)

    a, b = run(), run()
    assert a.times == b.times
    assert [v["executions"] for v in a.values] == [v["executions"] for v in b.values]


def test_trace_records_checkpoint_crash_recovery():
    plan = FaultPlan(
        seed=1, crashes=[RankCrash(rank=1, at_time=4.5e-4, restart_cost=0.01)]
    )
    res = spmd_run(
        _counter_prog, laptop_cluster(num_nodes=2), fault_plan=plan, trace=True
    )
    by_rank = [
        [e.label for e in t if e.category == FAULT_CATEGORY] for t in res.traces
    ]
    assert "crash" in by_rank[1]
    assert "crash" not in by_rank[0]  # only the failed rank logs the crash
    for labels in by_rank:
        assert "recovery" in labels  # but every rank recovers
        assert labels.count("checkpoint") >= 2


def test_recovery_charges_restart_plus_reload():
    plan = FaultPlan(
        seed=1, crashes=[RankCrash(rank=0, at_time=1e-4, restart_cost=0.02)]
    )
    res = spmd_run(
        _counter_prog, laptop_cluster(num_nodes=2), fault_plan=plan, trace=True
    )
    recs = [
        e
        for e in res.traces[0]
        if e.category == FAULT_CATEGORY and e.label == "recovery"
    ]
    assert len(recs) == 1
    assert recs[0].duration >= 0.02  # restart_cost plus snapshot reload
    assert recs[0].meta["restart_cost"] == 0.02


def test_multiple_crashes_multiple_recoveries():
    plan = FaultPlan(
        seed=1,
        crashes=[
            RankCrash(rank=0, at_time=2e-4, restart_cost=0.005),
            RankCrash(rank=1, at_time=8e-4, restart_cost=0.005),
        ],
    )
    res = spmd_run(_counter_prog, laptop_cluster(num_nodes=2), fault_plan=plan)
    for rank, v in enumerate(res.values):
        assert v["value"] == rank + 10
        assert v["recoveries"] == 2
    assert plan.stats.crashes_consumed == 2


def test_without_plan_no_detection_overhead_mistakes():
    res = spmd_run(_counter_prog, laptop_cluster(num_nodes=2))
    assert all(v["recoveries"] == 0 for v in res.values)


def test_validation():
    def prog(ctx):
        with pytest.raises(ValidationError):
            CheckpointManager(ctx, every=0)
        with pytest.raises(ValidationError):
            CheckpointManager(ctx, write_bandwidth=0.0)
        mgr = CheckpointManager(ctx)
        with pytest.raises(ValidationError):
            mgr.run_iterations(0, lambda i: None, lambda: None, lambda s: None)
        with pytest.raises(ValidationError):
            mgr.run_convergence(0, lambda i: True, lambda: None, lambda s: None)
        return True

    assert spmd_run(prog, laptop_cluster(num_nodes=1)).values == [True]


# ------------------------------------------------------------ run_convergence
def _converging_prog(ctx, stop_at=6, max_iters=20, every=2, step_cost=1e-4):
    """Convergence loop: state is a counter; the body signals done when the
    (collective) counter reaches ``stop_at``."""
    state = {"x": 0.0, "history": []}
    mgr = CheckpointManager(ctx, every=every)

    def body(_it):
        state["x"] += 1.0
        state["history"].append(state["x"])
        ctx.clock.advance(step_cost)
        ctx.comm.barrier()
        return state["x"] >= stop_at

    execs = mgr.run_convergence(
        max_iters,
        body,
        lambda: {"x": state["x"], "history": list(state["history"])},
        lambda s: (
            state.update(x=s["x"]),
            state.update(history=list(s["history"])),
        ),
    )
    return {
        "value": state["x"],
        "history": state["history"],
        "executions": execs,
        "checkpoints": mgr.checkpoints_taken,
        "recoveries": mgr.recoveries,
    }


def test_run_convergence_stops_on_done():
    res = spmd_run(_converging_prog, laptop_cluster(num_nodes=2))
    for v in res.values:
        assert v["value"] == 6.0
        assert v["executions"] == 6  # not max_iters
        assert v["history"] == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert v["recoveries"] == 0


def test_run_convergence_hits_cap_when_never_done():
    res = spmd_run(
        _converging_prog, laptop_cluster(num_nodes=2), kwargs={"stop_at": 99}
    )
    for v in res.values:
        assert v["executions"] == 20
        assert v["value"] == 20.0


def test_run_convergence_crash_replays_to_same_stop():
    """A crash mid-loop re-executes from the checkpoint, and the restored
    history means the loop still stops at the same iteration with the
    same record."""
    plan = FaultPlan(
        seed=1, crashes=[RankCrash(rank=1, at_time=4.5e-4, restart_cost=0.01)]
    )
    res = spmd_run(_converging_prog, laptop_cluster(num_nodes=2), fault_plan=plan)
    clean = spmd_run(_converging_prog, laptop_cluster(num_nodes=2))
    for v, c in zip(res.values, clean.values):
        assert v["value"] == c["value"]
        assert v["history"] == c["history"]  # no re-appended duplicates
        assert v["executions"] > c["executions"]
        assert v["recoveries"] == 1
    assert plan.stats.crashes_consumed == 1
    assert res.makespan > clean.makespan + 0.01
