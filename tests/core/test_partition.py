"""Reduction-space partitioning and the Fig. 3 node arrangement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import (
    arrange_nodes,
    block_partition,
    classify_edges,
    owner_of,
    partition_counts,
    split_edges_by_node_ranges,
    validate_range_tiling,
)
from repro.util.errors import ValidationError


@given(st.integers(0, 1000), st.integers(1, 40))
def test_block_partition_covers_and_balances(n, parts):
    offsets = block_partition(n, parts)
    assert offsets[0] == 0 and offsets[-1] == n
    sizes = np.diff(offsets)
    assert (sizes >= 0).all()
    assert sizes.max() - sizes.min() <= 1
    assert (sizes == partition_counts(n, parts)).all()


def test_block_partition_exact_example():
    np.testing.assert_array_equal(block_partition(10, 3), [0, 4, 7, 10])


def test_block_partition_validation():
    with pytest.raises(ValidationError):
        block_partition(-1, 2)
    with pytest.raises(ValidationError):
        block_partition(5, 0)


@given(st.integers(1, 500), st.integers(1, 16))
def test_owner_of_consistent_with_offsets(n, parts):
    offsets = block_partition(n, parts)
    ids = np.arange(n)
    owners = owner_of(offsets, ids)
    for p in range(parts):
        lo, hi = offsets[p], offsets[p + 1]
        assert (owners[lo:hi] == p).all()


def test_owner_of_range_check():
    with pytest.raises(ValidationError):
        owner_of(block_partition(10, 2), np.array([10]))


def test_classify_edges_masks():
    edges = np.array([[0, 1], [1, 5], [5, 6], [0, 6], [2, 3]])
    local, cross = classify_edges(edges, 0, 4)
    np.testing.assert_array_equal(local, [True, False, False, False, True])
    np.testing.assert_array_equal(cross, [False, True, False, True, False])
    with pytest.raises(ValidationError):
        classify_edges(np.zeros((3, 3)), 0, 4)


def _random_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return np.unique(edges, axis=0)  # drop duplicates: the count test needs a set


@pytest.mark.parametrize("parts", [1, 2, 3, 5])
def test_cross_edges_assigned_to_both_sides(parts):
    """Paper: a cross edge appears in exactly the two partitions it spans."""
    n = 40
    edges = _random_graph(n, 300, seed=1)
    offsets = block_partition(n, parts)
    seen = {}
    for p in range(parts):
        _, local, cross = arrange_nodes(edges, offsets, p)
        for u, v in local:
            seen[(u, v)] = seen.get((u, v), 0) + 1
        for u, v in cross:
            seen[(u, v)] = seen.get((u, v), 0) + 1
    for (u, v), count in seen.items():
        same = owner_of(offsets, np.array([u]))[0] == owner_of(offsets, np.array([v]))[0]
        assert count == (1 if same else 2), f"edge ({u},{v}) seen {count} times"
    # every edge covered
    assert len(seen) == len({(u, v) for u, v in map(tuple, edges)})


def test_arrangement_layout_local_first_remotes_grouped():
    """Fig. 3: local nodes in front, remote nodes grouped by owner."""
    n = 30
    edges = _random_graph(n, 150, seed=2)
    offsets = block_partition(n, 3)
    arr, local, cross = arrange_nodes(edges, offsets, 1)
    assert arr.lo == offsets[1] and arr.hi == offsets[2]
    base = arr.n_local
    for owner in sorted(arr.remote_ids):
        ids = arr.remote_ids[owner]
        assert (np.sort(ids) == ids).all()
        assert arr.remote_offsets[owner] == base
        base += len(ids)
        # every remote id really belongs to that owner
        assert (owner_of(offsets, ids) == owner).all()
    assert arr.n_slots == base


def test_slot_mapping_roundtrip():
    n = 25
    edges = _random_graph(n, 120, seed=3)
    offsets = block_partition(n, 2)
    arr, local, cross = arrange_nodes(edges, offsets, 0)
    # local ids map to [0, n_local)
    slots = arr.slot_of_global(np.arange(arr.lo, arr.hi), n)
    np.testing.assert_array_equal(slots, np.arange(arr.n_local))
    # cross-edge endpoints all resolve
    if len(cross):
        slots = arr.slot_of_global(cross.reshape(-1), n)
        assert (slots >= 0).all() and (slots < arr.n_slots).all()


def test_slot_mapping_unknown_id_raises():
    n = 20
    edges = np.array([[0, 1]])
    offsets = block_partition(n, 2)
    arr, _, _ = arrange_nodes(edges, offsets, 0)
    with pytest.raises(ValidationError):
        arr.slot_of_global(np.array([15]), n)  # never referenced remote


def test_arrange_nodes_bad_part():
    with pytest.raises(ValidationError):
        arrange_nodes(np.array([[0, 1]]), block_partition(4, 2), 2)


def test_validate_range_tiling_accepts_exact_tilings():
    validate_range_tiling([(0, 9)], 9)
    validate_range_tiling([(0, 4), (4, 9)], 9)
    validate_range_tiling([(0, 4), (4, 4), (4, 9)], 9)  # empty device is fine
    validate_range_tiling([(0, 0)], 0)


@given(st.integers(0, 200), st.integers(1, 8))
def test_validate_range_tiling_accepts_every_block_partition(n, parts):
    offsets = block_partition(n, parts)
    ranges = [(int(offsets[p]), int(offsets[p + 1])) for p in range(parts)]
    validate_range_tiling(ranges, n)


@pytest.mark.parametrize(
    "ranges, total",
    [
        ([], 0),  # no devices
        ([(0, 3), (4, 9)], 9),  # gap: node 3 unowned
        ([(0, 5), (4, 9)], 9),  # overlap: node 4 double-covered
        ([(0, 3)], 9),  # short: tail of the space dropped
        ([(1, 9)], 9),  # does not start at 0
        ([(0, 5), (5, 3)], 3),  # inverted range
    ],
)
def test_validate_range_tiling_rejects_broken_tilings(ranges, total):
    with pytest.raises(ValidationError):
        validate_range_tiling(ranges, total)


def test_split_edges_by_node_ranges_duplicates_cross_device():
    edges = np.array([[0, 1], [1, 4], [4, 5], [0, 5]])
    ranges = [(0, 3), (3, 6)]
    sets = split_edges_by_node_ranges(edges, ranges)
    # edge 0 only device 0; edge 2 only device 1; edges 1 and 3 both.
    np.testing.assert_array_equal(sets[0], [0, 1, 3])
    np.testing.assert_array_equal(sets[1], [1, 2, 3])
