"""Static coefficient fields (the SII-C limitation lifted)."""

import numpy as np
import pytest

from repro.core.api import StencilKernel, shifted
from repro.core.env import RuntimeEnv
from repro.core.stencil import StencilFields
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd

WORK = WorkModel(name="vc", flops_per_elem=14, bytes_per_elem=40)
RNG = np.random.default_rng(9)
GRID = RNG.random((24, 20))
KAPPA = 0.5 + 0.5 * RNG.random((24, 20))  # spatially varying diffusivity


def varcoef_apply(src, dst, region, ctx: StencilFields):
    """Variable-coefficient diffusion: du = div(kappa grad u), lumped."""
    kappa = ctx["kappa"]
    alpha = ctx.param
    flux = (
        kappa[region] * (shifted(src, region, (1, 0)) - src[region])
        + kappa[region] * (shifted(src, region, (-1, 0)) - src[region])
        + kappa[region] * (shifted(src, region, (0, 1)) - src[region])
        + kappa[region] * (shifted(src, region, (0, -1)) - src[region])
    )
    dst[region] = src[region] + alpha * flux


def neighbor_kappa_apply(src, dst, region, ctx: StencilFields):
    """Reads the *neighbour's* coefficient — exercises the field halo."""
    kappa = ctx["kappa"]
    dst[region] = shifted(src, region, (1, 0)) * shifted(kappa, region, (1, 0))


def _seq(apply_fn, iters):
    src = np.zeros((26, 22))
    src[1:-1, 1:-1] = GRID
    kap = np.zeros((26, 22))
    kap[1:-1, 1:-1] = KAPPA
    dst = np.zeros_like(src)
    region = (slice(1, 25), slice(1, 21))
    ctx = StencilFields(0.1, {"kappa": kap})
    for _ in range(iters):
        apply_fn(src, dst, region, ctx)
        src, dst = dst, src
        src[0] = src[-1] = 0
        src[:, 0] = src[:, -1] = 0
    return src[region]


def _program(apply_fn, iters=3, dims=None):
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(
            StencilKernel(apply_fn, 1, WORK),
            GRID.shape,
            dims=dims,
            parameter=0.1,
            static_fields={"kappa": KAPPA},
        )
        st.set_global_grid(GRID)
        st.run(iters)
        return st.gather_global()

    return prog


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_variable_coefficient_matches_sequential(nodes):
    res = run_spmd(_program(varcoef_apply), nodes=nodes)
    np.testing.assert_allclose(res.values[0], _seq(varcoef_apply, 3), rtol=1e-12)


@pytest.mark.parametrize("nodes", [2, 4])
def test_field_halos_are_correct(nodes):
    """Reading shifted(kappa) across a process boundary must see the
    neighbour's coefficients, which only works if the field was padded
    from the global array correctly."""
    res = run_spmd(_program(neighbor_kappa_apply, iters=1), nodes=nodes)
    np.testing.assert_allclose(res.values[0], _seq(neighbor_kappa_apply, 1), rtol=1e-12)


def test_fields_wrapper_accessors():
    ctx = StencilFields("p", {"a": np.ones(3)})
    assert ctx.param == "p"
    np.testing.assert_array_equal(ctx["a"], np.ones(3))
    np.testing.assert_array_equal(ctx.fields["a"], np.ones(3))


def test_field_shape_validated():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(
            StencilKernel(varcoef_apply, 1, WORK),
            GRID.shape,
            static_fields={"kappa": np.zeros((5, 5))},
        )

    with pytest.raises(ConfigurationError, match="kappa"):
        run_spmd(prog, nodes=1)


def test_no_fields_keeps_plain_parameter():
    def plain(src, dst, region, param):
        assert param == 42  # not wrapped
        dst[region] = src[region]

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(StencilKernel(plain, 1, WORK), GRID.shape, parameter=42)
        st.set_global_grid(GRID)
        st.step()
        return True

    assert run_spmd(prog, nodes=1).values[0]
