"""Generalized-reduction runtime: correctness across ranks and devices."""

import numpy as np
import pytest

from repro.core.api import GRKernel
from repro.core.env import RuntimeEnv
from repro.core.partition import block_partition
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd

K = 8
WORK = WorkModel(
    name="hist", flops_per_elem=30, bytes_per_elem=24, atomics_per_elem=1, num_reduction_keys=K
)
RNG = np.random.default_rng(11)
DATA = RNG.random((6000, 3))


def _emit(obj, data, start, param):
    keys = np.minimum((data[:, 0] * K).astype(int), K - 1)
    vals = np.concatenate([data, np.ones((len(data), 1))], axis=1)
    obj.insert_many(keys, vals)


def _kernel():
    return GRKernel(emit_batch=_emit, reduce_op="sum", num_keys=K, value_width=4, work=WORK)


def _reference():
    ref = np.zeros((K, 4))
    keys = np.minimum((DATA[:, 0] * K).astype(int), K - 1)
    np.add.at(ref, keys, np.concatenate([DATA, np.ones((len(DATA), 1))], axis=1))
    return ref


def _program(mix="cpu+2gpu", bcast=True, **gr_opts):
    def prog(ctx):
        env = RuntimeEnv(ctx, mix)
        gr = env.get_GR(**gr_opts)
        gr.set_kernel(_kernel())
        offs = block_partition(len(DATA), ctx.size)
        lo, hi = int(offs[ctx.rank]), int(offs[ctx.rank + 1])
        gr.set_input(DATA[lo:hi], global_start=lo)
        gr.start()
        return gr.get_global_reduction(bcast=bcast)

    return prog


@pytest.mark.parametrize("nodes", [1, 2, 3, 4])
def test_correct_across_rank_counts(nodes):
    res = run_spmd(_program(), nodes=nodes, gpus_per_node=2)
    for v in res.values:
        np.testing.assert_allclose(v, _reference(), rtol=1e-12)


@pytest.mark.parametrize("mix", ["cpu", "1gpu", "2gpu", "cpu+1gpu", "cpu+2gpu"])
def test_correct_across_device_mixes(mix):
    res = run_spmd(_program(mix), nodes=2, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _reference(), rtol=1e-12)


def test_bcast_false_returns_only_at_root():
    res = run_spmd(_program(bcast=False), nodes=3, gpus_per_node=2)
    np.testing.assert_allclose(res.values[0], _reference())
    assert res.values[1] is None and res.values[2] is None


def test_localization_override_does_not_change_results():
    on = run_spmd(_program(localized=True), nodes=1, gpus_per_node=2)
    off = run_spmd(_program(localized=False), nodes=1, gpus_per_node=2)
    np.testing.assert_allclose(on.values[0], off.values[0])
    # ... but unlocalized atomics cost more simulated time.
    assert off.makespan > on.makespan


def test_paper_style_elementwise_emit():
    def emit(obj, unit, index, param):
        obj.insert(int(min(unit[0] * K, K - 1)), np.concatenate([unit, [1.0]]))

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        gr = env.get_GR()
        gr.set_emit_func(emit, reduce_op="sum", num_keys=K, value_width=4, work=WORK)
        gr.set_input(DATA[:500])
        gr.start()
        return gr.get_global_reduction()

    got = run_spmd(prog, nodes=1).values[0]
    ref = np.zeros((K, 4))
    keys = np.minimum((DATA[:500, 0] * K).astype(int), K - 1)
    np.add.at(ref, keys, np.concatenate([DATA[:500], np.ones((500, 1))], axis=1))
    np.testing.assert_allclose(got, ref)


def test_runtime_reuse_with_new_kernel():
    """The paper's Moldyn reuses one GR runtime for its KE and AV kernels."""

    def sum_emit(obj, data, start, param):
        obj.insert_many(np.zeros(len(data), dtype=np.int64), data[:, 0])

    def max_emit(obj, data, start, param):
        obj.insert_many(np.zeros(len(data), dtype=np.int64), data[:, 0])

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        gr = env.get_GR()
        w = WORK.replace(num_reduction_keys=1)
        gr.set_kernel(GRKernel(sum_emit, "sum", 1, 1, w))
        gr.set_input(DATA[:1000])
        gr.start()
        total = gr.get_global_reduction()[0, 0]
        gr.set_kernel(GRKernel(max_emit, "max", 1, 1, w))
        gr.set_input(DATA[:1000])
        gr.start()
        peak = gr.get_global_reduction()[0, 0]
        return total, peak

    total, peak = run_spmd(prog, nodes=1).values[0]
    assert total == pytest.approx(DATA[:1000, 0].sum())
    assert peak == pytest.approx(DATA[:1000, 0].max())


def test_set_reduc_func_changes_op():
    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        gr = env.get_GR()
        gr.set_kernel(
            GRKernel(
                lambda obj, d, s, p: obj.insert_many(np.zeros(len(d), dtype=np.int64), d[:, 0]),
                "sum", 1, 1, WORK.replace(num_reduction_keys=1),
            )
        )
        gr.set_reduc_func("min")
        gr.set_input(DATA[:200])
        gr.start()
        return gr.get_local_reduction().values[0, 0]

    assert run_spmd(prog, nodes=1).values[0] == pytest.approx(DATA[:200, 0].min())


def test_model_scaling_multiplies_time_not_results():
    def prog(ctx, model):
        env = RuntimeEnv(ctx, "cpu")
        gr = env.get_GR()
        gr.set_kernel(_kernel())
        gr.set_input(DATA, model_local_elems=model)
        gr.start()
        return gr.get_local_reduction().values.copy()

    small = run_spmd(prog, nodes=1, kwargs={"model": None})
    big = run_spmd(prog, nodes=1, kwargs={"model": len(DATA) * 50})
    np.testing.assert_allclose(small.values[0], big.values[0])
    # Only the *compute* part scales (per-chunk dispatch overhead does not),
    # so assert a strong directional effect rather than exact linearity.
    assert big.makespan > 10 * small.makespan


def test_errors_for_missing_configuration():
    def no_kernel(ctx):
        RuntimeEnv(ctx, "cpu").get_GR().start()

    with pytest.raises(ConfigurationError, match="kernel"):
        run_spmd(no_kernel, nodes=1)

    def no_input(ctx):
        gr = RuntimeEnv(ctx, "cpu").get_GR()
        gr.set_kernel(_kernel())
        gr.start()

    with pytest.raises(ConfigurationError, match="input"):
        run_spmd(no_input, nodes=1)

    def early_result(ctx):
        gr = RuntimeEnv(ctx, "cpu").get_GR()
        gr.set_kernel(_kernel())
        gr.get_local_reduction()

    with pytest.raises(ConfigurationError, match="result"):
        run_spmd(early_result, nodes=1)


def test_empty_input_rejected():
    def prog(ctx):
        gr = RuntimeEnv(ctx, "cpu").get_GR()
        gr.set_kernel(_kernel())
        gr.set_input(np.zeros((0, 3)))

    with pytest.raises(ConfigurationError):
        run_spmd(prog, nodes=1)
