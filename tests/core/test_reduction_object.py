"""Reduction objects: the accumulation data structure."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.reduction_object import DenseReductionObject, HashReductionObject
from repro.util.errors import ValidationError


def test_initialized_to_identity():
    assert (DenseReductionObject(4, 2, "sum").values == 0).all()
    assert (DenseReductionObject(4, 1, "min").values == np.inf).all()
    assert (DenseReductionObject(4, 1, "max").values == -np.inf).all()
    assert (DenseReductionObject(4, 1, "prod").values == 1).all()


def test_scalar_insert():
    obj = DenseReductionObject(3, 1, "sum")
    obj.insert(1, 5.0)
    obj.insert(1, 2.0)
    assert obj.values[1, 0] == 7.0
    assert obj.n_inserts == 2


def test_insert_many_with_duplicate_keys():
    obj = DenseReductionObject(4, 1, "sum")
    obj.insert_many(np.array([0, 1, 1, 3, 1]), np.ones(5))
    np.testing.assert_array_equal(obj.values[:, 0], [1, 3, 0, 1])


def test_insert_many_multiwidth():
    obj = DenseReductionObject(2, 3, "sum")
    obj.insert_many(np.array([0, 0, 1]), np.arange(9.0).reshape(3, 3))
    np.testing.assert_array_equal(obj.values[0], [3, 5, 7])
    np.testing.assert_array_equal(obj.values[1], [6, 7, 8])


def test_min_max_ops():
    obj = DenseReductionObject(2, 1, "min")
    obj.insert_many(np.array([0, 0, 1]), np.array([5.0, 2.0, -1.0]))
    np.testing.assert_array_equal(obj.values[:, 0], [2.0, -1.0])

    obj = DenseReductionObject(2, 1, "max")
    obj.insert_many(np.array([0, 0]), np.array([5.0, 2.0]))
    assert obj.values[0, 0] == 5.0


def test_key_range_filter_drops_outside():
    obj = DenseReductionObject(3, 1, "sum", key_lo=10)
    obj.insert_many(np.array([9, 10, 12, 13]), np.ones(4))
    np.testing.assert_array_equal(obj.values[:, 0], [1, 0, 1])
    assert obj.n_dropped == 2
    assert obj.n_inserts == 4
    obj.insert(5, 1.0)  # scalar path also filters
    assert obj.n_dropped == 3


def test_merge_combines_elementwise():
    a = DenseReductionObject(3, 1, "sum")
    b = DenseReductionObject(3, 1, "sum")
    a.insert_many(np.array([0, 1]), np.array([1.0, 2.0]))
    b.insert_many(np.array([1, 2]), np.array([10.0, 20.0]))
    a.merge(b)
    np.testing.assert_array_equal(a.values[:, 0], [1, 12, 20])


def test_merge_requires_matching_config():
    a = DenseReductionObject(3, 1, "sum")
    with pytest.raises(ValidationError):
        a.merge(DenseReductionObject(4, 1, "sum"))
    with pytest.raises(ValidationError):
        a.merge(DenseReductionObject(3, 2, "sum"))
    with pytest.raises(ValidationError):
        a.merge(DenseReductionObject(3, 1, "min"))


def test_spawn_empty_copies_config():
    obj = DenseReductionObject(5, 2, "min", key_lo=3)
    clone = obj.spawn_empty()
    assert (clone.key_lo, clone.key_hi, clone.value_width, clone.op) == (3, 8, 2, "min")
    assert (clone.values == np.inf).all()


def test_values_shape_validation():
    obj = DenseReductionObject(3, 2, "sum")
    with pytest.raises(ValidationError):
        obj.insert_many(np.array([0]), np.ones((1, 3)))


def test_invalid_construction():
    with pytest.raises(ValidationError):
        DenseReductionObject(0, 1)
    with pytest.raises(ValidationError):
        DenseReductionObject(1, 0)
    with pytest.raises(ValidationError):
        DenseReductionObject(1, 1, "avg")


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.floats(-100, 100, allow_nan=False)), max_size=60
    ),
    st.sampled_from(["sum", "min", "max"]),
)
def test_insert_many_equals_sequential_inserts(pairs, op):
    """Batch scatter must equal one-at-a-time insertion (associativity)."""
    batch = DenseReductionObject(8, 1, op)
    seq = DenseReductionObject(8, 1, op)
    if pairs:
        keys = np.array([k for k, _ in pairs])
        vals = np.array([v for _, v in pairs])
        batch.insert_many(keys, vals)
        for k, v in pairs:
            seq.insert(k, v)
    np.testing.assert_allclose(batch.values, seq.values, rtol=1e-12)


@given(
    st.lists(st.tuples(st.integers(0, 5), st.floats(-10, 10, allow_nan=False)), max_size=40)
)
def test_hash_object_matches_dense(pairs):
    """The hash-table variant is a semantic oracle for the dense one."""
    dense = DenseReductionObject(6, 1, "sum")
    hashed = HashReductionObject("sum", 1)
    for k, v in pairs:
        dense.insert(k, v)
        hashed.insert(k, v)
    for k in range(6):
        expect = dense.values[k, 0]
        got = hashed.get(k)
        if got is None:
            assert expect == 0.0
        else:
            assert got[0] == pytest.approx(expect, rel=1e-9, abs=1e-9)


def test_hash_object_arbitrary_keys():
    obj = HashReductionObject("max", 1)
    obj.insert(("word", 3), 5.0)
    obj.insert(("word", 3), 9.0)
    assert obj.get(("word", 3))[0] == 9.0
    assert ("word", 3) in obj
    assert len(obj) == 1
    assert obj.get("missing") is None


def test_hash_object_merge():
    a, b = HashReductionObject("sum", 1), HashReductionObject("sum", 1)
    a.insert("x", 1.0)
    b.insert("x", 2.0)
    b.insert("y", 3.0)
    a.merge(b)
    assert a.get("x")[0] == 3.0
    assert a.get("y")[0] == 3.0
    with pytest.raises(ValidationError):
        a.merge(HashReductionObject("min", 1))


def test_hash_object_insert_many():
    obj = HashReductionObject("sum", 2)
    obj.insert_many(["a", "b", "a"], np.arange(6.0).reshape(3, 2))
    np.testing.assert_array_equal(obj.get("a"), [4.0, 6.0])


# -- vectorized hash insert_many ----------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.floats(-50, 50, allow_nan=False)), max_size=50
    ),
    st.sampled_from(["sum", "min", "max"]),
)
def test_hash_insert_many_matches_sequential(pairs, op):
    """The grouped (np.unique) batch path must agree with one-at-a-time
    insertion — exactly for min/max, to rounding for sums."""
    batch = HashReductionObject(op, 1)
    seq = HashReductionObject(op, 1)
    if pairs:
        batch.insert_many(
            np.array([k for k, _ in pairs]), np.array([v for _, v in pairs])
        )
    for k, v in pairs:
        seq.insert(k, v)
    assert set(batch.keys()) == set(seq.keys())
    for k in seq.keys():
        if op == "sum":
            assert batch.get(k)[0] == pytest.approx(seq.get(k)[0], rel=1e-12, abs=1e-12)
        else:
            assert batch.get(k)[0] == seq.get(k)[0]


def test_hash_insert_many_duplicate_keys_min_max():
    """Duplicate keys inside one batch combine with the op, and fold once
    against any pre-existing table entry."""
    obj = HashReductionObject("min", 1)
    obj.insert(3, 0.5)
    obj.insert_many(np.array([3, 3, 7, 7]), np.array([2.0, -1.0, 4.0, 9.0]))
    assert obj.get(3)[0] == -1.0
    assert obj.get(7)[0] == 4.0

    obj = HashReductionObject("max", 1)
    obj.insert_many(np.array([1, 1, 1]), np.array([-5.0, 8.0, 2.0]))
    assert obj.get(1)[0] == 8.0
    assert obj.n_inserts == 3


def test_hash_insert_many_object_keys_fall_back():
    """Tuple / mixed / ragged key sequences take the per-element path."""
    obj = HashReductionObject("sum", 1)
    obj.insert_many([("a", 1), ("b", 2), ("a", 1)], np.array([1.0, 2.0, 3.0]))
    assert obj.get(("a", 1))[0] == 4.0
    assert obj.get(("b", 2))[0] == 2.0
    # Ragged mix of tuples and scalars must not crash the array probe.
    obj.insert_many([("a", 1), "b"], np.array([1.0, 5.0]))
    assert obj.get(("a", 1))[0] == 5.0
    assert obj.get("b")[0] == 5.0


# -- scatter plans (plan_scatter + planned insert_many) -----------------------


def _planned_vs_plain(op, num_keys, key_lo, keys, width=1, rounds=2, seed=0):
    """Feed the same batches through a planned and an unplanned object."""
    rng = np.random.default_rng(seed)
    planned = DenseReductionObject(num_keys, width, op, key_lo=key_lo)
    plain = DenseReductionObject(num_keys, width, op, key_lo=key_lo)
    plan = planned.plan_scatter(keys)
    for r in range(rounds):
        vals = rng.standard_normal((len(keys), width))
        planned.insert_many(keys, vals)
        plain.insert_many(keys, vals)
    return planned, plain, plan


@pytest.mark.parametrize("width", [1, 3])
def test_planned_sum_trash_bin_mode_bit_identical(width):
    """Dense ownership: one bincount with a trailing trash bin.  Planned and
    unplanned scatters must agree bit for bit (same input-order bincount)."""
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 100, size=400)  # ~90% in range -> trash-bin mode
    planned, plain, plan = _planned_vs_plain("sum", 90, 0, keys, width=width)
    assert plan.take_idx is None and plan.flat_idx is not None
    np.testing.assert_array_equal(planned.values, plain.values)
    assert planned.n_inserts == plain.n_inserts
    assert planned.n_dropped == plain.n_dropped > 0


def test_planned_sum_take_mode_bit_identical():
    """Sparse ownership (a device object fed the full edge array): the plan
    gathers its own values first, then bincounts exactly its range."""
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 100, size=400)
    planned, plain, plan = _planned_vs_plain("sum", 10, 40, keys, width=2)
    assert plan.take_idx is not None  # 2 * n_valid < n_keys
    np.testing.assert_array_equal(planned.values, plain.values)
    assert planned.n_dropped == plain.n_dropped


def test_planned_sum_no_valid_keys():
    keys = np.arange(50, 60)
    planned, plain, plan = _planned_vs_plain("sum", 5, 0, keys)
    assert plan.take_idx is not None and len(plan.take_idx) == 0
    np.testing.assert_array_equal(planned.values, plain.values)
    assert planned.n_dropped == 2 * len(keys)


@pytest.mark.parametrize("op", ["min", "max"])
def test_planned_min_max_csr_reduceat(op):
    """Min/max use the CSR layout (stable sort + reduceat) — exact, because
    the ops are order-insensitive."""
    rng = np.random.default_rng(3)
    keys = rng.integers(-5, 25, size=300)  # unsorted, duplicates, out-of-range
    planned, plain, plan = _planned_vs_plain(op, 20, 0, keys)
    assert plan.order is not None and plan.seg_starts is not None
    np.testing.assert_array_equal(planned.values, plain.values)
    assert planned.n_dropped == plain.n_dropped > 0


def test_planned_generic_op_matches_unplanned():
    """Ops without a fast path (prod) still apply through the plan's
    filtered-index ufunc.at."""
    rng = np.random.default_rng(4)
    keys = rng.integers(0, 12, size=60)
    planned, plain, _ = _planned_vs_plain("prod", 8, 0, keys)
    np.testing.assert_allclose(planned.values, plain.values, rtol=1e-12)


def test_reset_keeps_plans_and_buffers():
    """Pooled objects reset between steps; plans depend only on the key
    layout so a post-reset planned insert is identical to a fresh object's."""
    keys = np.array([0, 2, 2, 5, 9])  # 9 out of range for num_keys=8
    obj = DenseReductionObject(8, 1, "sum")
    obj.plan_scatter(keys)
    buf = obj.values
    obj.insert_many(keys, np.ones(5))
    obj.reset()
    assert obj.values is buf and obj._plans  # same storage, plans survive
    assert obj.n_inserts == obj.n_dropped == 0
    assert (obj.values == 0).all()
    obj.insert_many(keys, np.ones(5))
    fresh = DenseReductionObject(8, 1, "sum")
    fresh.insert_many(keys, np.ones(5))
    np.testing.assert_array_equal(obj.values, fresh.values)
    assert obj.n_dropped == fresh.n_dropped == 1


# -- external storage (segment views) -----------------------------------------


def test_storage_segments_tile_one_combined_array():
    """Objects backed by slices of one array accumulate straight into it —
    how the irregular runtime makes one scatter update every device."""
    combined = np.full((6, 2), np.nan)
    a = DenseReductionObject(3, 2, "sum", storage=combined[:3])
    b = DenseReductionObject(3, 2, "sum", key_lo=3, storage=combined[3:])
    assert (combined == 0).all()  # construction fills with the identity
    assert np.shares_memory(a.values, combined)
    a.insert(1, [1.0, 2.0])
    b.insert(4, [3.0, 4.0])
    b.insert(1, [9.0, 9.0])  # outside b's range: dropped, a's segment untouched
    np.testing.assert_array_equal(combined[1], [1.0, 2.0])
    np.testing.assert_array_equal(combined[4], [3.0, 4.0])
    assert b.n_dropped == 1


def test_storage_fills_with_op_identity():
    buf = np.zeros((4, 1))
    DenseReductionObject(4, 1, "min", storage=buf)
    assert (buf == np.inf).all()


def test_storage_shape_and_dtype_validation():
    with pytest.raises(ValidationError):
        DenseReductionObject(3, 2, "sum", storage=np.zeros((3, 1)))
    with pytest.raises(ValidationError):
        DenseReductionObject(3, 2, "sum", storage=np.zeros((3, 2), dtype=np.float32))
