"""Reduction objects: the accumulation data structure."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.reduction_object import DenseReductionObject, HashReductionObject
from repro.util.errors import ValidationError


def test_initialized_to_identity():
    assert (DenseReductionObject(4, 2, "sum").values == 0).all()
    assert (DenseReductionObject(4, 1, "min").values == np.inf).all()
    assert (DenseReductionObject(4, 1, "max").values == -np.inf).all()
    assert (DenseReductionObject(4, 1, "prod").values == 1).all()


def test_scalar_insert():
    obj = DenseReductionObject(3, 1, "sum")
    obj.insert(1, 5.0)
    obj.insert(1, 2.0)
    assert obj.values[1, 0] == 7.0
    assert obj.n_inserts == 2


def test_insert_many_with_duplicate_keys():
    obj = DenseReductionObject(4, 1, "sum")
    obj.insert_many(np.array([0, 1, 1, 3, 1]), np.ones(5))
    np.testing.assert_array_equal(obj.values[:, 0], [1, 3, 0, 1])


def test_insert_many_multiwidth():
    obj = DenseReductionObject(2, 3, "sum")
    obj.insert_many(np.array([0, 0, 1]), np.arange(9.0).reshape(3, 3))
    np.testing.assert_array_equal(obj.values[0], [3, 5, 7])
    np.testing.assert_array_equal(obj.values[1], [6, 7, 8])


def test_min_max_ops():
    obj = DenseReductionObject(2, 1, "min")
    obj.insert_many(np.array([0, 0, 1]), np.array([5.0, 2.0, -1.0]))
    np.testing.assert_array_equal(obj.values[:, 0], [2.0, -1.0])

    obj = DenseReductionObject(2, 1, "max")
    obj.insert_many(np.array([0, 0]), np.array([5.0, 2.0]))
    assert obj.values[0, 0] == 5.0


def test_key_range_filter_drops_outside():
    obj = DenseReductionObject(3, 1, "sum", key_lo=10)
    obj.insert_many(np.array([9, 10, 12, 13]), np.ones(4))
    np.testing.assert_array_equal(obj.values[:, 0], [1, 0, 1])
    assert obj.n_dropped == 2
    assert obj.n_inserts == 4
    obj.insert(5, 1.0)  # scalar path also filters
    assert obj.n_dropped == 3


def test_merge_combines_elementwise():
    a = DenseReductionObject(3, 1, "sum")
    b = DenseReductionObject(3, 1, "sum")
    a.insert_many(np.array([0, 1]), np.array([1.0, 2.0]))
    b.insert_many(np.array([1, 2]), np.array([10.0, 20.0]))
    a.merge(b)
    np.testing.assert_array_equal(a.values[:, 0], [1, 12, 20])


def test_merge_requires_matching_config():
    a = DenseReductionObject(3, 1, "sum")
    with pytest.raises(ValidationError):
        a.merge(DenseReductionObject(4, 1, "sum"))
    with pytest.raises(ValidationError):
        a.merge(DenseReductionObject(3, 2, "sum"))
    with pytest.raises(ValidationError):
        a.merge(DenseReductionObject(3, 1, "min"))


def test_spawn_empty_copies_config():
    obj = DenseReductionObject(5, 2, "min", key_lo=3)
    clone = obj.spawn_empty()
    assert (clone.key_lo, clone.key_hi, clone.value_width, clone.op) == (3, 8, 2, "min")
    assert (clone.values == np.inf).all()


def test_values_shape_validation():
    obj = DenseReductionObject(3, 2, "sum")
    with pytest.raises(ValidationError):
        obj.insert_many(np.array([0]), np.ones((1, 3)))


def test_invalid_construction():
    with pytest.raises(ValidationError):
        DenseReductionObject(0, 1)
    with pytest.raises(ValidationError):
        DenseReductionObject(1, 0)
    with pytest.raises(ValidationError):
        DenseReductionObject(1, 1, "avg")


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.floats(-100, 100, allow_nan=False)), max_size=60
    ),
    st.sampled_from(["sum", "min", "max"]),
)
def test_insert_many_equals_sequential_inserts(pairs, op):
    """Batch scatter must equal one-at-a-time insertion (associativity)."""
    batch = DenseReductionObject(8, 1, op)
    seq = DenseReductionObject(8, 1, op)
    if pairs:
        keys = np.array([k for k, _ in pairs])
        vals = np.array([v for _, v in pairs])
        batch.insert_many(keys, vals)
        for k, v in pairs:
            seq.insert(k, v)
    np.testing.assert_allclose(batch.values, seq.values, rtol=1e-12)


@given(
    st.lists(st.tuples(st.integers(0, 5), st.floats(-10, 10, allow_nan=False)), max_size=40)
)
def test_hash_object_matches_dense(pairs):
    """The hash-table variant is a semantic oracle for the dense one."""
    dense = DenseReductionObject(6, 1, "sum")
    hashed = HashReductionObject("sum", 1)
    for k, v in pairs:
        dense.insert(k, v)
        hashed.insert(k, v)
    for k in range(6):
        expect = dense.values[k, 0]
        got = hashed.get(k)
        if got is None:
            assert expect == 0.0
        else:
            assert got[0] == pytest.approx(expect, rel=1e-9, abs=1e-9)


def test_hash_object_arbitrary_keys():
    obj = HashReductionObject("max", 1)
    obj.insert(("word", 3), 5.0)
    obj.insert(("word", 3), 9.0)
    assert obj.get(("word", 3))[0] == 9.0
    assert ("word", 3) in obj
    assert len(obj) == 1
    assert obj.get("missing") is None


def test_hash_object_merge():
    a, b = HashReductionObject("sum", 1), HashReductionObject("sum", 1)
    a.insert("x", 1.0)
    b.insert("x", 2.0)
    b.insert("y", 3.0)
    a.merge(b)
    assert a.get("x")[0] == 3.0
    assert a.get("y")[0] == 3.0
    with pytest.raises(ValidationError):
        a.merge(HashReductionObject("min", 1))


def test_hash_object_insert_many():
    obj = HashReductionObject("sum", 2)
    obj.insert_many(["a", "b", "a"], np.arange(6.0).reshape(3, 2))
    np.testing.assert_array_equal(obj.get("a"), [4.0, 6.0])
