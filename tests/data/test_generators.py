"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.atoms import build_neighbor_edges, fcc_lattice
from repro.data.grids import heat3d_initial, synthetic_image
from repro.data.meshes import geometric_mesh, random_mesh
from repro.data.points import clear_points_cache, clustered_points, points_cache_stats
from repro.util.errors import ValidationError


# ---------------------------------------------------------------- points
def test_clustered_points_shape_and_dtype():
    pts, centers = clustered_points(1000, 40, 3, seed=1)
    assert pts.shape == (1000, 3) and pts.dtype == np.float32
    assert centers.shape == (40, 3)


def test_clustered_points_deterministic():
    a, _ = clustered_points(500, 8, seed=5)
    b, _ = clustered_points(500, 8, seed=5)
    np.testing.assert_array_equal(a, b)
    c, _ = clustered_points(500, 8, seed=6)
    assert not np.array_equal(a, c)


def test_clustered_points_memo_hit_and_readonly():
    clear_points_cache()
    try:
        a, _ = clustered_points(300, 4, seed=1)
        b, _ = clustered_points(300, 4, seed=1)
        assert a is b  # second call is a memo hit, not a regeneration
        assert not a.flags.writeable
        stats = points_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1
    finally:
        clear_points_cache()


def test_clustered_points_memo_bounded_lru():
    clear_points_cache()
    try:
        cap = points_cache_stats()["max_entries"]
        kept, _ = clustered_points(300, 4, seed=0)
        # fill the memo, re-touching seed=0 so it stays most-recently-used
        for seed in range(1, cap):
            clustered_points(300, 4, seed=seed)
        assert clustered_points(300, 4, seed=0)[0] is kept
        # one past the cap: the LRU entry (seed=1) falls out, seed=0 survives
        clustered_points(300, 4, seed=cap)
        stats = points_cache_stats()
        assert stats["size"] == cap and stats["evictions"] == 1
        assert clustered_points(300, 4, seed=0)[0] is kept
        refetched, _ = clustered_points(300, 4, seed=1)
        assert points_cache_stats()["evictions"] == 2  # seed=1 was regenerated
        np.testing.assert_array_equal(refetched, clustered_points(300, 4, seed=1)[0])
    finally:
        clear_points_cache()


def test_clustered_points_cluster_structure():
    pts, centers = clustered_points(4000, 4, 2, seed=0, spread=0.01)
    # every point sits near some true center
    d = np.linalg.norm(pts[:, None, :] - centers[None], axis=2).min(axis=1)
    assert np.percentile(d, 95) < 0.05


def test_clustered_points_validation():
    with pytest.raises(ValidationError):
        clustered_points(0, 4)
    with pytest.raises(ValidationError):
        clustered_points(3, 4)


# ---------------------------------------------------------------- meshes
def test_geometric_mesh_degree_and_shape():
    pos, edges = geometric_mesh(2000, 10.0, seed=2)
    assert pos.shape == (2000, 3)
    assert edges.shape[1] == 2
    assert (edges[:, 0] < edges[:, 1]).all()
    mean_degree = 2 * len(edges) / 2000
    assert 6 < mean_degree < 15  # within ~40% of the target


def test_geometric_mesh_spatial_sort_improves_locality():
    _, sorted_edges = geometric_mesh(1500, 8.0, seed=3, spatial_sort=True)
    _, raw_edges = geometric_mesh(1500, 8.0, seed=3, spatial_sort=False)
    span_sorted = np.abs(sorted_edges[:, 1] - sorted_edges[:, 0]).mean()
    span_raw = np.abs(raw_edges[:, 1] - raw_edges[:, 0]).mean()
    assert span_sorted < span_raw / 2


def test_geometric_mesh_shuffle_degrades_locality():
    _, clean = geometric_mesh(1500, 8.0, seed=4, shuffle_fraction=0.0)
    _, noisy = geometric_mesh(1500, 8.0, seed=4, shuffle_fraction=0.3)
    assert np.abs(noisy[:, 1] - noisy[:, 0]).mean() > np.abs(clean[:, 1] - clean[:, 0]).mean()


def test_geometric_mesh_validation():
    with pytest.raises(ValidationError):
        geometric_mesh(1, 4.0)
    with pytest.raises(ValidationError):
        geometric_mesh(100, -1.0)
    with pytest.raises(ValidationError):
        geometric_mesh(100, 8.0, shuffle_fraction=1.5)


def test_random_mesh():
    edges = random_mesh(50, 200, seed=1)
    assert edges.shape == (200, 2)
    assert (edges[:, 0] != edges[:, 1]).all()
    with pytest.raises(ValidationError):
        random_mesh(1, 10)


# ---------------------------------------------------------------- atoms
def test_fcc_lattice_counts():
    assert fcc_lattice(2, jitter=0).shape == (32, 3)
    assert fcc_lattice(5).shape == (500, 3)
    with pytest.raises(ValidationError):
        fcc_lattice(0)


def test_fcc_lattice_jitter_deterministic():
    np.testing.assert_array_equal(fcc_lattice(3, seed=7), fcc_lattice(3, seed=7))
    assert not np.array_equal(fcc_lattice(3, seed=7), fcc_lattice(3, seed=8))


def test_neighbor_edges_respect_cutoff():
    pos = fcc_lattice(4, jitter=0.0)
    edges = build_neighbor_edges(pos, 1.0)
    d = np.linalg.norm(pos[edges[:, 0]] - pos[edges[:, 1]], axis=1)
    assert (d <= 1.0 + 1e-9).all()
    assert (edges[:, 0] < edges[:, 1]).all()
    with pytest.raises(ValidationError):
        build_neighbor_edges(pos, -1)
    with pytest.raises(ValidationError):
        build_neighbor_edges(pos[:2] * 100, 0.01)  # no neighbors


# ---------------------------------------------------------------- grids
def test_heat3d_initial_hot_box():
    grid = heat3d_initial((16, 16, 16), seed=0)
    assert grid.shape == (16, 16, 16)
    assert grid.max() > 99.0
    assert grid[0, 0, 0] < 1.0  # corners are cold
    with pytest.raises(ValidationError):
        heat3d_initial((2, 16, 16))


def test_synthetic_image_properties():
    img = synthetic_image((64, 48), seed=1)
    assert img.shape == (64, 48) and img.dtype == np.float32
    assert 0.0 <= img.min() and img.max() <= 2.0
    assert img.std() > 0.05  # has real structure
    np.testing.assert_array_equal(img, synthetic_image((64, 48), seed=1))
    with pytest.raises(ValidationError):
        synthetic_image((4, 64))
