"""Round-trips through the cross-process payload wire protocol.

The process backend's virtual-time bit-identity rests on payloads crossing
the worker boundary *losslessly*: same data, same charged nbytes, same
read-only delivery semantics.  These tests drive every encoding — shared
memory, inline bytes, pickled objects, the ``None`` singleton — through
``encode_payload``/``decode_payload`` in one process and check the decoded
payload is indistinguishable from the thread backend's original.
"""

import numpy as np
import pytest

from repro.comm.payload import Payload, make_payload, none_payload
from repro.comm.wire import (
    KIND_INLINE,
    KIND_NONE,
    KIND_OBJECT,
    KIND_SHM,
    ShmRegistry,
    decode_payload,
    discard_record,
    encode_payload,
    set_shm_threshold,
    shm_threshold,
)


@pytest.fixture
def registry():
    reg = ShmRegistry()
    yield reg
    reg.release_all()


@pytest.fixture
def force_shm():
    """Route every array payload through shared memory."""
    prev = set_shm_threshold(1)
    yield
    set_shm_threshold(prev)


@pytest.fixture
def force_inline():
    """Route every array payload through inline bytes."""
    prev = set_shm_threshold(1 << 40)
    yield
    set_shm_threshold(prev)


def _roundtrip(payload, registry):
    return decode_payload(encode_payload(payload), registry)


# -- arrays: both transports --------------------------------------------------

@pytest.mark.parametrize("transport", ["shm", "inline"])
def test_array_roundtrip_preserves_everything(transport, registry):
    prev = set_shm_threshold(1 if transport == "shm" else 1 << 40)
    try:
        arr = np.arange(48, dtype=np.float64).reshape(6, 8)
        payload = make_payload(arr)
        out = _roundtrip(payload, registry)
        assert out.is_array
        assert out.nbytes == payload.nbytes == arr.nbytes
        assert out.data.dtype == arr.dtype
        assert out.data.shape == arr.shape
        np.testing.assert_array_equal(out.data, arr)
        # Receivers must not be able to corrupt in-flight state.
        assert not out.data.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            out.data[0, 0] = 99.0
    finally:
        set_shm_threshold(prev)


def test_transport_choice_follows_threshold(registry):
    small = make_payload(np.zeros(4))
    big = make_payload(np.zeros(shm_threshold() // 8 + 16))
    assert encode_payload(small)[0] == KIND_INLINE
    rec = encode_payload(big)
    assert rec[0] == KIND_SHM
    decode_payload(rec, registry)  # adopt so the fixture's sweep unlinks it


def test_shm_decode_is_zero_copy_view(registry, force_shm):
    arr = np.arange(1000, dtype=np.float32)
    out = _roundtrip(make_payload(arr), registry)
    # The decoded array is a view over the mapped segment, not an owner.
    assert not out.data.flags.owndata
    assert len(registry) == 1
    np.testing.assert_array_equal(out.data, arr)


def test_shm_decode_requires_registry(force_shm):
    rec = encode_payload(make_payload(np.zeros(64)))
    with pytest.raises(Exception, match="ShmRegistry"):
        decode_payload(rec, None)
    discard_record(rec)


def test_noncontiguous_view_is_compacted(registry, force_shm):
    base = np.arange(100, dtype=np.float64).reshape(10, 10)
    col = base[:, 3]  # stride != itemsize
    payload = make_payload(col)
    out = _roundtrip(payload, registry)
    np.testing.assert_array_equal(out.data, base[:, 3])
    assert out.data.flags.c_contiguous
    assert out.nbytes == col.nbytes


def test_owned_view_roundtrips(registry, force_inline):
    """``owned=True`` payloads (zero-copy framework sends) still ship."""
    buf = np.full(32, 7.0)
    payload = make_payload(buf, owned=True)
    assert payload.data.base is buf or payload.data is buf  # no copy made
    out = _roundtrip(payload, registry)
    np.testing.assert_array_equal(out.data, buf)


def test_charged_nbytes_survives_override(registry, force_inline):
    """A payload whose charged size differs from its buffer size (benchmarks
    send scaled-down functional arrays priced at paper scale)."""
    arr = np.zeros(8)
    payload = Payload(data=arr, nbytes=10**9, is_array=True)
    out = _roundtrip(payload, registry)
    assert out.nbytes == 10**9
    assert out.data.nbytes == arr.nbytes


def test_empty_array_roundtrip(registry, force_shm):
    # Zero-byte arrays cannot ride shared memory (size must be > 0);
    # they fall through to the inline path even below the threshold.
    payload = make_payload(np.zeros(0))
    rec = encode_payload(payload)
    assert rec[0] == KIND_INLINE
    out = decode_payload(rec, registry)
    assert out.data.shape == (0,)


# -- None singleton -----------------------------------------------------------

def test_none_payload_decodes_to_singleton(registry):
    payload = make_payload(None)
    rec = encode_payload(payload)
    assert rec == (KIND_NONE,)
    assert decode_payload(rec, registry) is none_payload()
    assert decode_payload(rec, registry).nbytes == payload.nbytes


# -- object payloads ----------------------------------------------------------

def test_object_roundtrip(registry):
    obj = {"iter": 3, "centroids": np.arange(6.0).reshape(2, 3), "tags": ("a", "b")}
    payload = make_payload(obj)
    rec = encode_payload(payload)
    assert rec[0] == KIND_OBJECT
    out = decode_payload(rec, registry)
    assert not out.is_array
    assert out.nbytes == payload.nbytes
    assert out.data["iter"] == 3
    assert out.data["tags"] == ("a", "b")
    np.testing.assert_array_equal(out.data["centroids"], obj["centroids"])


def test_arrays_inside_objects_are_refrozen(registry):
    """Pickle loses ``writeable=False``; the decoder must restore it."""
    obj = [np.ones(4), {"k": np.zeros((2, 2))}, (np.arange(3),)]
    out = decode_payload(encode_payload(make_payload(obj)), registry)
    assert not out.data[0].flags.writeable
    assert not out.data[1]["k"].flags.writeable
    assert not out.data[2][0].flags.writeable


def test_scalar_roundtrip(registry):
    out = decode_payload(encode_payload(make_payload(3.25)), registry)
    assert out.data == 3.25


# -- lifecycle ----------------------------------------------------------------

def test_registry_release_unlinks_segments(force_shm):
    reg = ShmRegistry()
    recs = [encode_payload(make_payload(np.arange(64.0))) for _ in range(3)]
    views = [decode_payload(r, reg) for r in recs]
    assert len(reg) == 3
    del views
    assert reg.release_all() == 3
    assert len(reg) == 0


def test_discard_record_unlinks_undecoded_shm(force_shm):
    from multiprocessing import shared_memory

    rec = encode_payload(make_payload(np.arange(64.0)))
    name = rec[1]
    discard_record(rec)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    discard_record(rec)  # idempotent


def test_set_threshold_validates():
    from repro.util.errors import ValidationError

    with pytest.raises(ValidationError):
        set_shm_threshold(-1)
