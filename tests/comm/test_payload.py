"""Payload snapshot semantics (zero-copy: snapshot once, deliver views)."""

import numpy as np
import pytest

from repro.comm.payload import estimate_nbytes, make_payload


def test_array_payload_snapshots_sender_buffer():
    buf = np.arange(5.0)
    payload = make_payload(buf)
    buf[:] = -1  # sender reuses its buffer immediately (buffered eager)
    np.testing.assert_array_equal(payload.deliver(), np.arange(5.0))


def test_array_nbytes():
    assert make_payload(np.zeros(10, dtype=np.float64)).nbytes == 80
    assert make_payload(np.zeros((2, 3), dtype=np.float32)).nbytes == 24


def test_deliver_returns_readonly_view():
    payload = make_payload(np.arange(3.0))
    a = payload.deliver()
    assert not a.flags.writeable
    with pytest.raises(ValueError):
        a[:] = 99  # receivers cannot corrupt in-flight state
    np.testing.assert_array_equal(payload.deliver(), np.arange(3.0))


def test_sender_buffer_stays_writeable():
    buf = np.arange(4.0)
    make_payload(buf)
    assert buf.flags.writeable
    buf[:] = 7  # and mutating it does not disturb the snapshot


def test_readonly_input_is_forwarded_without_copy():
    buf = np.arange(4.0)
    buf.setflags(write=False)
    payload = make_payload(buf)
    assert payload.data is buf  # already immutable: zero-copy
    assert not payload.deliver().flags.writeable


def test_owned_array_is_not_copied():
    buf = np.arange(6.0)
    payload = make_payload(buf, owned=True)
    assert payload.data.base is buf  # read-only view, no data copy
    assert not payload.deliver().flags.writeable
    assert buf.flags.writeable  # ownership transfer, not a flag flip


def test_deliver_into_out_buffer():
    payload = make_payload(np.arange(6.0).reshape(2, 3))
    out = np.zeros(6)
    got = payload.deliver(out)
    assert got is out
    np.testing.assert_array_equal(out, np.arange(6.0))


def test_deliver_into_noncontiguous_out():
    payload = make_payload(np.arange(6.0).reshape(2, 3))
    backing = np.zeros((4, 3))
    out = backing[::2]  # a strided view, like a halo slab
    payload.deliver(out)
    np.testing.assert_array_equal(backing[::2], np.arange(6.0).reshape(2, 3))
    np.testing.assert_array_equal(backing[1::2], 0)


def test_deliver_out_shape_mismatch():
    payload = make_payload(np.arange(6.0))
    with pytest.raises(ValueError, match="elements"):
        payload.deliver(np.zeros(5))


def test_object_payload_container_snapshot():
    obj = {"a": [1, 2, 3]}
    payload = make_payload(obj)
    obj["a"].append(4)
    assert payload.deliver() == {"a": [1, 2, 3]}


def test_object_payload_snapshots_nested_arrays():
    arr = np.arange(3.0)
    payload = make_payload({"x": arr})
    arr[:] = -1
    delivered = payload.deliver()
    np.testing.assert_array_equal(delivered["x"], np.arange(3.0))
    assert not delivered["x"].flags.writeable


def test_object_into_array_buffer_rejected():
    payload = make_payload({"x": 1})
    with pytest.raises(TypeError):
        payload.deliver(np.zeros(1))


def test_scalar_payload():
    payload = make_payload(3.5)
    assert payload.deliver() == 3.5
    assert payload.nbytes == 8


def test_none_payload():
    assert make_payload(None).deliver() is None


def test_estimate_nbytes():
    assert estimate_nbytes(np.zeros(10)) == 80
    assert estimate_nbytes(3.5) == 8
    assert estimate_nbytes("abcd") == 4
    assert estimate_nbytes(b"abc") == 3
    # Containers: per-slot overhead + contents; arrays dominate.
    est = estimate_nbytes({"k": np.zeros(100)})
    assert est >= 800
    assert estimate_nbytes([np.zeros(4), np.zeros(4)]) >= 64


def test_object_nbytes_counts_nested_arrays():
    small = make_payload((0, np.zeros(2)))
    big = make_payload((0, np.zeros(2000)))
    assert big.nbytes - small.nbytes == (2000 - 2) * 8
