"""Payload snapshot semantics."""

import numpy as np
import pytest

from repro.comm.payload import make_payload


def test_array_payload_snapshots_sender_buffer():
    buf = np.arange(5.0)
    payload = make_payload(buf)
    buf[:] = -1  # sender reuses its buffer immediately (buffered eager)
    np.testing.assert_array_equal(payload.deliver(), np.arange(5.0))


def test_array_nbytes():
    assert make_payload(np.zeros(10, dtype=np.float64)).nbytes == 80
    assert make_payload(np.zeros((2, 3), dtype=np.float32)).nbytes == 24


def test_deliver_returns_fresh_copy_each_time():
    payload = make_payload(np.arange(3.0))
    a = payload.deliver()
    a[:] = 99
    np.testing.assert_array_equal(payload.deliver(), np.arange(3.0))


def test_deliver_into_out_buffer():
    payload = make_payload(np.arange(6.0).reshape(2, 3))
    out = np.zeros(6)
    got = payload.deliver(out)
    assert got is out
    np.testing.assert_array_equal(out, np.arange(6.0))


def test_deliver_out_shape_mismatch():
    payload = make_payload(np.arange(6.0))
    with pytest.raises(ValueError, match="elements"):
        payload.deliver(np.zeros(5))


def test_object_payload_deep_copied():
    obj = {"a": [1, 2, 3]}
    payload = make_payload(obj)
    obj["a"].append(4)
    assert payload.deliver() == {"a": [1, 2, 3]}


def test_object_into_array_buffer_rejected():
    payload = make_payload({"x": 1})
    with pytest.raises(TypeError):
        payload.deliver(np.zeros(1))


def test_scalar_payload():
    payload = make_payload(3.5)
    assert payload.deliver() == 3.5
    assert payload.nbytes == 8


def test_none_payload():
    assert make_payload(None).deliver() is None
