"""Reduction operator registry."""

import numpy as np
import pytest

from repro.comm.ops import get_reduce_op
from repro.util.errors import ValidationError


@pytest.mark.parametrize(
    "name,a,b,expected",
    [
        ("sum", 2, 3, 5),
        ("prod", 2, 3, 6),
        ("min", 2, 3, 2),
        ("max", 2, 3, 3),
    ],
)
def test_named_ops_scalars(name, a, b, expected):
    assert get_reduce_op(name)(a, b) == expected


def test_named_ops_arrays_elementwise():
    op = get_reduce_op("max")
    np.testing.assert_array_equal(
        op(np.array([1, 5, 2]), np.array([4, 0, 2])), np.array([4, 5, 2])
    )


def test_callable_passthrough():
    fn = lambda a, b: a - b  # noqa: E731
    assert get_reduce_op(fn) is fn


def test_unknown_name():
    with pytest.raises(ValidationError, match="sum"):
        get_reduce_op("average")
