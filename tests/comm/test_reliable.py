"""ReliableComm: bit-identical delivery over lossy fault plans."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.comm.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.comm.reliable import ReliableComm
from repro.faults.plan import FaultPlan, LinkDegradation, MessageFaultRule
from repro.sim.engine import spmd_run
from repro.util.errors import CommunicationError

LOSSY = dict(drop=0.3, dup=0.2, delay=0.2, max_delay=3e-4)


def _reliable(ctx, **kw):
    return ReliableComm(ctx.comm, **kw)


def _ring_prog(ctx):
    """Each rank sends a payload around a ring and allreduces a checksum."""
    comm = _reliable(ctx)
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    payload = np.arange(32, dtype=np.float64) + ctx.rank
    for _ in range(4):
        req = comm.irecv(source=left, tag=7)
        comm.send(payload, right, tag=7)
        payload = req.wait() + 1.0
    total = comm.allreduce(float(payload.sum()), "sum")
    comm.flush()
    return payload, total, comm.retransmits, comm.duplicates_discarded


def test_ring_bit_identical_under_lossy_plan():
    cluster = laptop_cluster(num_nodes=4)
    clean = spmd_run(_ring_prog, cluster)
    lossy = spmd_run(_ring_prog, cluster, fault_plan=FaultPlan.lossy(seed=7, **LOSSY))
    for (cp, ct, _, _), (lp, lt, _, _) in zip(clean.values, lossy.values):
        np.testing.assert_array_equal(cp, lp)
        assert ct == lt
    # Faults actually happened and cost virtual time.
    assert sum(v[2] for v in lossy.values) > 0  # retransmits
    assert sum(v[3] for v in lossy.values) > 0  # duplicates discarded
    assert lossy.makespan > clean.makespan


def test_lossy_runs_are_deterministic():
    cluster = laptop_cluster(num_nodes=4)
    runs = [
        spmd_run(_ring_prog, cluster, fault_plan=FaultPlan.lossy(seed=7, **LOSSY))
        for _ in range(3)
    ]
    assert runs[0].times == runs[1].times == runs[2].times
    for later in runs[1:]:
        for (p0, t0, r0, d0), (p1, t1, r1, d1) in zip(runs[0].values, later.values):
            np.testing.assert_array_equal(p0, p1)
            assert (t0, r0, d0) == (t1, r1, d1)


def test_makespan_grows_with_severity():
    cluster = laptop_cluster(num_nodes=4)
    spans = []
    for drop in (0.0, 0.2, 0.5):
        plan = FaultPlan.lossy(seed=13, drop=drop)
        spans.append(spmd_run(_ring_prog, cluster, fault_plan=plan).makespan)
    assert spans[0] < spans[1] < spans[2]


def test_collectives_survive_losses():
    def prog(ctx):
        comm = _reliable(ctx)
        s = comm.allreduce(ctx.rank + 1, "sum")
        g = comm.gather(ctx.rank, root=0)
        b = comm.bcast("payload" if ctx.rank == 0 else None, root=0)
        comm.barrier()
        comm.flush()
        return s, g, b

    cluster = laptop_cluster(num_nodes=5)
    res = spmd_run(prog, cluster, fault_plan=FaultPlan.lossy(seed=3, **LOSSY))
    for rank, (s, g, b) in enumerate(res.values):
        assert s == sum(range(1, 6))
        assert g == (list(range(5)) if rank == 0 else None)
        assert b == "payload"


def test_zero_copy_out_delivery_preserved():
    def prog(ctx):
        comm = _reliable(ctx)
        if ctx.rank == 0:
            buf = np.zeros(16)
            req = comm.irecv(source=1, tag=2, out=buf)
            req.wait()
            comm.flush()
            return buf.copy()
        comm.send(np.full(16, 3.5), 0, tag=2)
        comm.flush()
        return None

    res = spmd_run(
        prog,
        laptop_cluster(num_nodes=2),
        fault_plan=FaultPlan.lossy(seed=21, drop=0.4, dup=0.3),
    )
    np.testing.assert_array_equal(res.values[0], np.full(16, 3.5))


def test_wildcards_rejected():
    def prog(ctx):
        comm = _reliable(ctx)
        if ctx.rank == 0:
            with pytest.raises(CommunicationError):
                comm.recv(source=ANY_SOURCE, tag=1)
            with pytest.raises(CommunicationError):
                comm.recv(source=1, tag=ANY_TAG)
            with pytest.raises(CommunicationError):
                comm.irecv(source=ANY_SOURCE, tag=1)
        return True

    assert all(spmd_run(prog, laptop_cluster(num_nodes=2)).values)


def test_proc_null_noops():
    def prog(ctx):
        comm = _reliable(ctx)
        comm.send("x", PROC_NULL, tag=1)
        assert comm.recv(source=PROC_NULL, tag=1) is None
        req = comm.irecv(source=PROC_NULL, tag=1)
        assert req.test() and req.wait() is None
        comm.flush()
        return True

    assert all(spmd_run(prog, laptop_cluster(num_nodes=2)).values)


def test_give_up_after_max_attempts():
    def prog(ctx):
        comm = _reliable(ctx, max_attempts=3)
        if ctx.rank == 0:
            comm.send("doomed", 1, tag=1)
        return None

    plan = FaultPlan(seed=1, rules=[MessageFaultRule(drop_prob=1.0)])
    with pytest.raises(CommunicationError, match="gave up"):
        spmd_run(prog, laptop_cluster(num_nodes=2), fault_plan=plan)


def test_retransmit_backoff_charged_to_virtual_clock():
    """Each failed attempt advances the sender's clock by the (doubling)
    timeout, so drops translate into a deterministic makespan penalty."""

    def prog(ctx):
        comm = _reliable(ctx, rto=1e-3, backoff=2.0)
        if ctx.rank == 0:
            t0 = ctx.clock.now
            comm.send(np.ones(4), 1, tag=1)
            return ctx.clock.now - t0
        comm.recv(source=0, tag=1)
        return None

    # Drop every transmission sent before t=1.5ms, then deliver.
    plan = FaultPlan(
        seed=1, rules=[MessageFaultRule(drop_prob=1.0, t_end=0.0015)]
    )
    res = spmd_run(prog, laptop_cluster(num_nodes=2), fault_plan=plan)
    # First attempt at t=0 dropped (+1ms), second at 1ms dropped (+2ms),
    # third at 3ms is outside the rule window and delivers.
    assert res.values[0] >= 3e-3


def test_degraded_link_slows_but_stays_correct():
    def prog(ctx):
        comm = _reliable(ctx)
        if ctx.rank == 0:
            comm.send(np.arange(1 << 12, dtype=np.float64), 1, tag=3)
            comm.flush()
            return None
        out = comm.recv(source=0, tag=3)
        comm.flush()
        return out

    cluster = laptop_cluster(num_nodes=2)
    clean = spmd_run(prog, cluster)
    slow_plan = FaultPlan(seed=1, degradations=[LinkDegradation(bandwidth_factor=0.25)])
    slow = spmd_run(prog, cluster, fault_plan=slow_plan)
    np.testing.assert_array_equal(clean.values[1], slow.values[1])
    assert slow.makespan > clean.makespan


def test_fault_trace_events_recorded():
    cluster = laptop_cluster(num_nodes=4)
    res = spmd_run(
        _ring_prog, cluster, trace=True, fault_plan=FaultPlan.lossy(seed=7, **LOSSY)
    )
    labels = [e.label for t in res.traces for e in t if e.category == "fault"]
    assert any(label.startswith("retransmit->") for label in labels)
    assert any(label.startswith("dup-discard<-") for label in labels)
