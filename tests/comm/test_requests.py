"""Non-blocking request handles (test/wait semantics)."""

import numpy as np

from repro.comm.constants import PROC_NULL
from tests.conftest import run_spmd


def test_send_request_always_complete():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(np.ones(3), 1, tag=0)
            return req.test(), req.wait()
        ctx.comm.recv(source=0, tag=0)
        return None

    done, value = run_spmd(prog, nodes=2).values[0]
    assert done is True and value is None


def test_recv_request_test_reflects_arrival():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=3)
            # Handshake: rank 1 confirms it has sent before we test().
            ctx.comm.recv(source=1, tag=4)
            ready_after = req.test()
            value = req.wait()
            done_after_wait = req.test()
            return ready_after, float(value[0]), done_after_wait
        ctx.comm.send(np.array([7.5]), 0, tag=3)
        ctx.comm.send("sent", 0, tag=4)
        return None

    ready_after, value, done = run_spmd(prog, nodes=2).values[0]
    assert ready_after is True
    assert value == 7.5
    assert done is True


def test_recv_request_test_false_before_send():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=9)
            early = req.test()
            ctx.comm.send("go", 1, tag=1)  # release the sender
            value = req.wait()
            return early, value
        ctx.comm.recv(source=0, tag=1)  # wait until rank 0 has probed
        ctx.comm.send("late", 0, tag=9)
        return None

    early, value = run_spmd(prog, nodes=2).values[0]
    assert early is False
    assert value == "late"


def test_proc_null_recv_request():
    def prog(ctx):
        req = ctx.comm.irecv(source=PROC_NULL, tag=0)
        return req.test(), req.wait()

    done, value = run_spmd(prog, nodes=1).values[0]
    assert done is True and value is None


def test_wait_is_idempotent():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=2)
            first = req.wait()
            second = req.wait()  # must not consume another message
            return first, second
        ctx.comm.send("only-one", 0, tag=2)
        return None

    first, second = run_spmd(prog, nodes=2).values[0]
    assert first == second == "only-one"
