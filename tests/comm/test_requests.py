"""Non-blocking request handles (test/wait semantics)."""

import numpy as np

from repro.comm.constants import PROC_NULL
from tests.conftest import run_spmd


def test_send_request_always_complete():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(np.ones(3), 1, tag=0)
            return req.test(), req.wait()
        ctx.comm.recv(source=0, tag=0)
        return None

    done, value = run_spmd(prog, nodes=2).values[0]
    assert done is True and value is None


def test_recv_request_test_reflects_arrival():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=3)
            # Handshake: rank 1 confirms it has sent before we test().
            ctx.comm.recv(source=1, tag=4)
            ready_after = req.test()
            value = req.wait()
            done_after_wait = req.test()
            return ready_after, float(value[0]), done_after_wait
        ctx.comm.send(np.array([7.5]), 0, tag=3)
        ctx.comm.send("sent", 0, tag=4)
        return None

    ready_after, value, done = run_spmd(prog, nodes=2).values[0]
    assert ready_after is True
    assert value == 7.5
    assert done is True


def test_recv_request_test_false_before_send():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=9)
            early = req.test()
            ctx.comm.send("go", 1, tag=1)  # release the sender
            value = req.wait()
            return early, value
        ctx.comm.recv(source=0, tag=1)  # wait until rank 0 has probed
        ctx.comm.send("late", 0, tag=9)
        return None

    early, value = run_spmd(prog, nodes=2).values[0]
    assert early is False
    assert value == "late"


def test_proc_null_recv_request():
    def prog(ctx):
        req = ctx.comm.irecv(source=PROC_NULL, tag=0)
        return req.test(), req.wait()

    done, value = run_spmd(prog, nodes=1).values[0]
    assert done is True and value is None


def test_proc_null_send_request():
    # MPI semantics: a send to PROC_NULL completes immediately, transmits
    # nothing, and advances no clocks.
    def prog(ctx):
        t0 = ctx.clock.now
        req = ctx.comm.isend(np.ones(4), PROC_NULL, tag=0)
        return req.test(), req.wait(), ctx.clock.now - t0, ctx.comm.fabric.pending_count(ctx.rank)

    done, value, dt, pending = run_spmd(prog, nodes=1).values[0]
    assert done is True and value is None
    assert dt == 0.0
    assert pending == 0


def test_proc_null_round_trip_in_spmd_halo_pattern():
    # Edge ranks of a non-periodic decomposition talk to PROC_NULL on one
    # side; the full isend/irecv/wait cycle must be a no-op there while
    # real neighbours still exchange.
    def prog(ctx):
        left = ctx.rank - 1 if ctx.rank > 0 else PROC_NULL
        right = ctx.rank + 1 if ctx.rank < ctx.size - 1 else PROC_NULL
        rreq = ctx.comm.irecv(source=left, tag=5)
        sreq = ctx.comm.isend(np.array([float(ctx.rank)]), right, tag=5)
        got = rreq.wait()
        sreq.wait()
        return None if got is None else float(got[0])

    values = run_spmd(prog, nodes=3).values
    assert values[0] is None  # rank 0 has no left neighbour
    assert values[1] == 0.0
    assert values[2] == 1.0


def test_waitall_returns_values_in_request_order():
    # waitall's results must line up with the request list, not with
    # message arrival order.
    def prog(ctx):
        if ctx.rank == 0:
            reqs = [
                ctx.comm.irecv(source=1, tag=11),
                ctx.comm.irecv(source=1, tag=10),
                ctx.comm.irecv(source=PROC_NULL, tag=0),
            ]
            return ctx.comm.waitall(reqs)
        # Send in the opposite order of rank 0's request list.
        ctx.comm.send("first-sent", 0, tag=10)
        ctx.comm.send("second-sent", 0, tag=11)
        return None

    values = run_spmd(prog, nodes=2).values[0]
    assert values == ["second-sent", "first-sent", None]


def test_wait_is_idempotent():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=2)
            first = req.wait()
            second = req.wait()  # must not consume another message
            return first, second
        ctx.comm.send("only-one", 0, tag=2)
        return None

    first, second = run_spmd(prog, nodes=2).values[0]
    assert first == second == "only-one"


def test_recv_test_raises_once_fabric_aborted():
    """Regression: ``RecvRequest.test()`` returned False forever after a
    sibling rank died; it must raise CommunicationError so polling loops
    fail fast instead of spinning until the watchdog."""
    import time as _time

    import pytest

    from repro.util.errors import CommunicationError

    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=3)
            for _ in range(10_000):
                if req.test():
                    return "matched"
                _time.sleep(0.001)
            return "spun-out"
        _time.sleep(0.05)
        raise ValueError("boom")

    t0 = _time.monotonic()
    with pytest.raises(ValueError, match="boom"):
        run_spmd(prog, nodes=2, wall_timeout=30.0)
    # rank 0's polling loop must have been cut short by the abort (the
    # CommunicationError from test()), not run its full ~10s course.
    assert _time.monotonic() - t0 < 5.0
