"""Fabric mailbox matching and link selection."""

import pytest

from repro.cluster.presets import laptop_cluster
from repro.comm.constants import ANY_SOURCE, ANY_TAG
from repro.comm.fabric import Fabric, Message
from repro.comm.payload import make_payload
from repro.util.errors import CommunicationError, DeadlockError, ValidationError


def _msg(src, dst, tag, arrival=1.0, wire=0.0):
    return Message(
        src=src,
        dst=dst,
        tag=tag,
        payload=make_payload(None),
        send_time=0.0,
        arrival_time=arrival,
        wire_duration=wire,
    )


@pytest.fixture
def fabric():
    return Fabric(laptop_cluster(num_nodes=2), ranks_per_node=2)


def test_node_of_and_link(fabric):
    assert fabric.node_of(0) == 0
    assert fabric.node_of(3) == 1
    assert fabric.link(0, 1).name == "shared-memory"
    assert fabric.link(0, 2).name == "test-net"
    with pytest.raises(ValidationError):
        fabric.node_of(4)


def test_match_by_source_and_tag(fabric):
    fabric.post(_msg(0, 1, tag=7))
    fabric.post(_msg(2, 1, tag=7))
    got = fabric.match(1, source=2, tag=7, timeout=1.0)
    assert got.src == 2
    got = fabric.match(1, source=ANY_SOURCE, tag=ANY_TAG, timeout=1.0)
    assert got.src == 0


def test_fifo_per_source_tag(fabric):
    first = _msg(0, 1, tag=3, arrival=9.0)
    second = _msg(0, 1, tag=3, arrival=1.0)  # arrives earlier but sent later
    fabric.post(first)
    fabric.post(second)
    assert fabric.match(1, 0, 3, timeout=1.0) is first
    assert fabric.match(1, 0, 3, timeout=1.0) is second


def test_match_timeout_raises_deadlock(fabric):
    with pytest.raises(DeadlockError):
        fabric.match(0, source=1, tag=1, timeout=0.05)


def test_probe_and_pending(fabric):
    assert not fabric.probe(1)
    fabric.post(_msg(0, 1, tag=2))
    assert fabric.probe(1)
    assert fabric.probe(1, source=0, tag=2)
    assert not fabric.probe(1, source=2)
    assert fabric.pending_count(1) == 1


def test_abort_poisons_fabric(fabric):
    fabric.abort(RuntimeError("x"))
    with pytest.raises(CommunicationError):
        fabric.post(_msg(0, 1, tag=1))
    with pytest.raises(CommunicationError):
        fabric.match(1, timeout=1.0)


def test_ingress_serializes_concurrent_arrivals(fabric):
    # Two messages whose wires overlap in time: the second's delivery must
    # be pushed back behind the first on the receiver NIC.
    fabric.post(_msg(0, 1, tag=1, arrival=1.0, wire=1.0))
    fabric.post(_msg(2, 1, tag=1, arrival=1.0, wire=1.0))
    a = fabric.match(1, 0, 1, timeout=1.0)
    b = fabric.match(1, 2, 1, timeout=1.0)
    assert a.arrival_time == pytest.approx(1.0)
    assert b.arrival_time == pytest.approx(2.0)


def test_inject_serializes_sender(fabric):
    link = fabric.link(0, 2)
    start1, wire1 = fabric.inject(0, 0.0, link.bandwidth, link)  # 1 second of bytes
    start2, wire2 = fabric.inject(0, 0.0, link.bandwidth, link)
    assert (start1, wire1) == (0.0, pytest.approx(1.0))
    assert start2 == pytest.approx(1.0)


def test_ranks_per_node_validation():
    with pytest.raises(ValidationError):
        Fabric(laptop_cluster(num_nodes=1), ranks_per_node=0)


def test_wildcard_match_picks_earliest_arrival_not_post_order(fabric):
    """Regression: ANY_SOURCE must match by minimum (arrival_time, src),
    not by which sender's thread won the race to post first."""
    fabric.post(_msg(2, 1, tag=5, arrival=3.0))
    fabric.post(_msg(0, 1, tag=5, arrival=1.0))
    got = fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0)
    assert got.src == 0
    assert fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0).src == 2


def test_wildcard_match_ties_break_by_source(fabric):
    fabric.post(_msg(3, 1, tag=5, arrival=2.0))
    fabric.post(_msg(0, 1, tag=5, arrival=2.0))
    assert fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0).src == 0


def test_wildcard_match_keeps_per_source_fifo(fabric):
    """A source's later message may carry an *earlier* arrival time (fault
    delays can reorder); the wildcard must still take that source's posts
    in FIFO order."""
    fabric.post(_msg(0, 1, tag=5, arrival=4.0))
    fabric.post(_msg(0, 1, tag=5, arrival=2.0))
    first = fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0)
    second = fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0)
    assert (first.arrival_time, second.arrival_time) == (4.0, 2.0)


def test_probe_raises_after_abort(fabric):
    """Regression: a ``test()`` polling loop must fail fast once a sibling
    rank has died, not spin forever on ``False``."""
    fabric.post(_msg(0, 1, tag=1))
    fabric.abort(RuntimeError("sibling died"))
    with pytest.raises(CommunicationError):
        fabric.probe(1)
