"""Fabric mailbox matching and link selection."""

import pytest

from repro.cluster.presets import laptop_cluster
from repro.comm.constants import ANY_SOURCE, ANY_TAG
from repro.comm.fabric import Fabric, Message
from repro.comm.payload import make_payload
from repro.util.errors import CommunicationError, DeadlockError, ValidationError


def _msg(src, dst, tag, arrival=1.0, wire=0.0):
    return Message(
        src=src,
        dst=dst,
        tag=tag,
        payload=make_payload(None),
        send_time=0.0,
        arrival_time=arrival,
        wire_duration=wire,
    )


@pytest.fixture
def fabric():
    return Fabric(laptop_cluster(num_nodes=2), ranks_per_node=2)


def test_node_of_and_link(fabric):
    assert fabric.node_of(0) == 0
    assert fabric.node_of(3) == 1
    assert fabric.link(0, 1).name == "shared-memory"
    assert fabric.link(0, 2).name == "test-net"
    with pytest.raises(ValidationError):
        fabric.node_of(4)


def test_match_by_source_and_tag(fabric):
    fabric.post(_msg(0, 1, tag=7))
    fabric.post(_msg(2, 1, tag=7))
    got = fabric.match(1, source=2, tag=7, timeout=1.0)
    assert got.src == 2
    got = fabric.match(1, source=ANY_SOURCE, tag=ANY_TAG, timeout=1.0)
    assert got.src == 0


def test_fifo_per_source_tag(fabric):
    first = _msg(0, 1, tag=3, arrival=9.0)
    second = _msg(0, 1, tag=3, arrival=1.0)  # arrives earlier but sent later
    fabric.post(first)
    fabric.post(second)
    assert fabric.match(1, 0, 3, timeout=1.0) is first
    assert fabric.match(1, 0, 3, timeout=1.0) is second


def test_match_timeout_raises_deadlock(fabric):
    with pytest.raises(DeadlockError):
        fabric.match(0, source=1, tag=1, timeout=0.05)


def test_probe_and_pending(fabric):
    assert not fabric.probe(1)
    fabric.post(_msg(0, 1, tag=2))
    assert fabric.probe(1)
    assert fabric.probe(1, source=0, tag=2)
    assert not fabric.probe(1, source=2)
    assert fabric.pending_count(1) == 1


def test_abort_poisons_fabric(fabric):
    fabric.abort(RuntimeError("x"))
    with pytest.raises(CommunicationError):
        fabric.post(_msg(0, 1, tag=1))
    with pytest.raises(CommunicationError):
        fabric.match(1, timeout=1.0)


def test_ingress_serializes_concurrent_arrivals(fabric):
    # Two messages whose wires overlap in time: the second's delivery must
    # be pushed back behind the first on the receiver NIC.
    fabric.post(_msg(0, 1, tag=1, arrival=1.0, wire=1.0))
    fabric.post(_msg(2, 1, tag=1, arrival=1.0, wire=1.0))
    a = fabric.match(1, 0, 1, timeout=1.0)
    b = fabric.match(1, 2, 1, timeout=1.0)
    assert a.arrival_time == pytest.approx(1.0)
    assert b.arrival_time == pytest.approx(2.0)


def test_inject_serializes_sender(fabric):
    link = fabric.link(0, 2)
    start1, wire1 = fabric.inject(0, 0.0, link.bandwidth, link)  # 1 second of bytes
    start2, wire2 = fabric.inject(0, 0.0, link.bandwidth, link)
    assert (start1, wire1) == (0.0, pytest.approx(1.0))
    assert start2 == pytest.approx(1.0)


def test_ranks_per_node_validation():
    with pytest.raises(ValidationError):
        Fabric(laptop_cluster(num_nodes=1), ranks_per_node=0)


def test_wildcard_match_picks_earliest_arrival_not_post_order(fabric):
    """Regression: ANY_SOURCE must match by minimum (arrival_time, src),
    not by which sender's thread won the race to post first."""
    fabric.post(_msg(2, 1, tag=5, arrival=3.0))
    fabric.post(_msg(0, 1, tag=5, arrival=1.0))
    got = fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0)
    assert got.src == 0
    assert fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0).src == 2


def test_wildcard_match_ties_break_by_source(fabric):
    fabric.post(_msg(3, 1, tag=5, arrival=2.0))
    fabric.post(_msg(0, 1, tag=5, arrival=2.0))
    assert fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0).src == 0


def test_wildcard_match_keeps_per_source_fifo(fabric):
    """A source's later message may carry an *earlier* arrival time (fault
    delays can reorder); the wildcard must still take that source's posts
    in FIFO order."""
    fabric.post(_msg(0, 1, tag=5, arrival=4.0))
    fabric.post(_msg(0, 1, tag=5, arrival=2.0))
    first = fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0)
    second = fabric.match(1, source=ANY_SOURCE, tag=5, timeout=1.0)
    assert (first.arrival_time, second.arrival_time) == (4.0, 2.0)


def test_probe_raises_after_abort(fabric):
    """Regression: a ``test()`` polling loop must fail fast once a sibling
    rank has died, not spin forever on ``False``."""
    fabric.post(_msg(0, 1, tag=1))
    fabric.abort(RuntimeError("sibling died"))
    with pytest.raises(CommunicationError):
        fabric.probe(1)


def test_deadlock_message_names_pattern_and_queue_depth(fabric):
    """The watchdog error must say what the rank was waiting for."""
    fabric.post(_msg(0, 1, tag=9))  # queued but unmatched by the receive below
    with pytest.raises(DeadlockError) as exc:
        fabric.match(1, source=2, tag=5, timeout=0.05)
    text = str(exc.value)
    assert "rank 1" in text
    assert "0.05s" in text
    assert "source=2" in text and "tag=5" in text
    assert "1 unmatched message(s)" in text
    with pytest.raises(DeadlockError) as exc:
        fabric.match(3, timeout=0.05)
    text = str(exc.value)
    assert "source=ANY_SOURCE" in text and "tag=ANY_TAG" in text
    assert "0 unmatched message(s)" in text


def test_non_matching_post_does_not_wake_blocked_receiver(fabric):
    """Targeted wakeups: only a message that can match notifies the cv."""
    import threading
    import time

    got = []
    thread = threading.Thread(
        target=lambda: got.append(fabric.match(1, source=0, tag=7, timeout=5.0)),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 2.0
    shard = fabric._shards[1]
    while shard.waiting_src is None and time.monotonic() < deadline:
        time.sleep(0.001)
    assert shard.waiting_src == 0 and shard.waiting_tag == 7
    fabric.post(_msg(2, 1, tag=7))  # wrong source: receiver must stay parked
    fabric.post(_msg(0, 1, tag=3))  # wrong tag: receiver must stay parked
    time.sleep(0.05)
    assert not got and thread.is_alive()
    fabric.post(_msg(0, 1, tag=7))
    thread.join(timeout=5.0)
    assert got and got[0].src == 0 and got[0].tag == 7
    assert fabric.pending_count(1) == 2  # the two non-matching posts remain


def test_link_lookup_is_precomputed_per_node_pair(fabric):
    """link() returns the one spec object per node pair, for every rank pair."""
    for src in range(fabric.size):
        for dst in range(fabric.size):
            expect = fabric.cluster.link_between(fabric.node_of(src), fabric.node_of(dst))
            assert fabric.link(src, dst) is expect
    # Intra-node pairs on different nodes share the identical spec object.
    assert fabric.link(0, 1) is fabric.link(2, 3)
