"""Point-to-point messaging semantics and LogGP timing."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.comm.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.sim.engine import spmd_run
from repro.util.errors import CommunicationError
from tests.conftest import run_spmd


def test_send_recv_array_roundtrip():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.arange(10.0), 1, tag=3)
            return None
        return ctx.comm.recv(source=0, tag=3)

    res = run_spmd(prog, nodes=2)
    np.testing.assert_array_equal(res.values[1], np.arange(10.0))


def test_send_recv_python_object():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send({"k": [1, 2]}, 1, tag=0)
            return None
        return ctx.comm.recv(source=0)

    assert run_spmd(prog, nodes=2).values[1] == {"k": [1, 2]}


def test_recv_into_buffer():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.ones(4), 1, tag=0)
            return None
        out = np.zeros(4)
        got = ctx.comm.recv(source=0, tag=0, out=out)
        assert got is out
        return out

    np.testing.assert_array_equal(run_spmd(prog, nodes=2).values[1], np.ones(4))


def test_tag_selectivity():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send("a", 1, tag=1)
            ctx.comm.send("b", 1, tag=2)
            return None
        second = ctx.comm.recv(source=0, tag=2)
        first = ctx.comm.recv(source=0, tag=1)
        return first, second

    assert run_spmd(prog, nodes=2).values[1] == ("a", "b")


def test_non_overtaking_same_tag():
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(5):
                ctx.comm.send(i, 1, tag=7)
            return None
        return [ctx.comm.recv(source=0, tag=7) for _ in range(5)]

    assert run_spmd(prog, nodes=2).values[1] == [0, 1, 2, 3, 4]


def test_any_source_any_tag():
    def prog(ctx):
        if ctx.rank == 2:
            got = {ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2)}
            return got
        ctx.comm.send(ctx.rank, 2, tag=ctx.rank)
        return None

    assert run_spmd(prog, nodes=3).values[2] == {0, 1}


def test_proc_null_send_recv_are_noops():
    def prog(ctx):
        ctx.comm.send("x", PROC_NULL, tag=0)
        assert ctx.comm.recv(source=PROC_NULL, tag=0) is None
        return ctx.clock.now

    assert run_spmd(prog, nodes=1).values[0] == 0.0


def test_irecv_deferred_completion():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=4)
            ctx.clock.advance(1.0)  # compute while the message flies
            value = req.wait()
            return value, ctx.clock.now
        ctx.comm.send(np.array([2.5]), 0, tag=4)
        return None

    value, t = run_spmd(prog, nodes=2).values[0]
    assert value[0] == 2.5
    # The message arrived during the 1s of compute: wait() is nearly free.
    assert t < 1.001


def test_sendrecv_exchange():
    def prog(ctx):
        partner = 1 - ctx.rank
        return ctx.comm.sendrecv(ctx.rank * 10, partner, partner, 5, 5)

    assert run_spmd(prog, nodes=2).values == [10, 0]


def test_recv_clock_waits_for_arrival():
    cluster = laptop_cluster(num_nodes=2)
    nbytes = 1_000_000 * 8

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.zeros(1_000_000), 1, tag=0)
            return ctx.clock.now
        ctx.comm.recv(source=0, tag=0)
        return ctx.clock.now

    res = spmd_run(prog, cluster)
    sender_t, recv_t = res.values
    link = cluster.network
    expected = link.send_overhead + link.latency + nbytes / link.bandwidth + link.recv_overhead
    assert recv_t == pytest.approx(expected, rel=1e-6)
    # Sender paid only its software overhead, not the wire time.
    assert sender_t == pytest.approx(link.send_overhead)


def test_wire_bytes_override_charges_model_scale():
    cluster = laptop_cluster(num_nodes=2)

    def prog(ctx, wire):
        if ctx.rank == 0:
            ctx.comm.send(np.zeros(10), 1, tag=0, wire_bytes=wire)
            return None
        ctx.comm.recv(source=0, tag=0)
        return ctx.clock.now

    small = spmd_run(prog, cluster, args=(None,)).values[1]
    big = spmd_run(prog, cluster, args=(8_000_000,)).values[1]
    assert big > small + 0.007  # 8 MB at 1 GB/s ~ 8 ms extra


def test_peer_out_of_range_rejected():
    def prog(ctx):
        ctx.comm.send(1, 5, tag=0)

    with pytest.raises(CommunicationError):
        run_spmd(prog, nodes=2)


def test_user_tag_range_enforced():
    from repro.comm.constants import COLLECTIVE_TAG_BASE

    def prog(ctx):
        ctx.comm.send(1, 0, tag=COLLECTIVE_TAG_BASE)

    with pytest.raises(CommunicationError):
        run_spmd(prog, nodes=1)


def test_waitall_returns_in_order():
    def prog(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=t) for t in (1, 2)]
            return ctx.comm.waitall(reqs)
        ctx.comm.send("one", 0, tag=1)
        ctx.comm.send("two", 0, tag=2)
        return None

    assert run_spmd(prog, nodes=2).values[0] == ["one", "two"]


def test_sender_mutation_after_isend_does_not_leak():
    # The send snapshots (or freezes) the payload at isend time: mutating
    # the source buffer afterwards must not change what the receiver sees.
    def prog(ctx):
        if ctx.rank == 0:
            buf = np.arange(6.0)
            ctx.comm.isend(buf, 1, tag=0)
            buf[:] = -1.0  # mutate immediately, before the receiver runs
            ctx.comm.send("mutated", 1, tag=1)
            return None
        got = ctx.comm.recv(source=0, tag=0)
        ctx.comm.recv(source=0, tag=1)  # sender has mutated by now
        return got.copy()

    got = run_spmd(prog, nodes=2).values[1]
    np.testing.assert_array_equal(got, np.arange(6.0))


def test_received_array_view_is_readonly():
    # Without out=, the receiver gets a read-only view of the snapshot:
    # writing through it must fail rather than corrupt the payload.
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.ones(4), 1, tag=0)
            return None
        got = ctx.comm.recv(source=0, tag=0)
        try:
            got[0] = 99.0
        except ValueError:
            return "readonly"
        return "writable"

    assert run_spmd(prog, nodes=2).values[1] == "readonly"


def test_recv_into_out_buffer_is_caller_owned():
    # With out=, the data lands in the caller's buffer, which stays
    # writable and is the same object that was passed in.
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.arange(4.0), 1, tag=0)
            return None
        out = np.empty(4)
        got = ctx.comm.recv(source=0, tag=0, out=out)
        out[0] += 1.0  # caller-owned: writing must be allowed
        return got is out, out.copy()

    same, out = run_spmd(prog, nodes=2).values[1]
    assert same
    np.testing.assert_array_equal(out, [1.0, 1.0, 2.0, 3.0])


def test_recv_out_into_strided_slab_matches_copy_path():
    # Pooled halo ingestion: receiving straight into a non-contiguous slab
    # view with out= must land the exact bytes the plain recv + np.copyto
    # path produces.
    def prog(ctx):
        if ctx.rank == 0:
            strip = np.arange(8.0) * 1.7
            ctx.comm.send(strip, 1, tag=0)
            ctx.comm.send(strip, 1, tag=1)
            return None
        copy_grid = np.zeros((8, 3))
        out_grid = np.zeros((8, 3))
        got = ctx.comm.recv(source=0, tag=0)
        np.copyto(copy_grid[:, 0], got)  # manual copy path
        ctx.comm.recv(source=0, tag=1, out=out_grid[:, 0])  # strided out=
        return copy_grid, out_grid

    copy_grid, out_grid = run_spmd(prog, nodes=2).values[1]
    np.testing.assert_array_equal(copy_grid, out_grid)
    np.testing.assert_array_equal(out_grid[:, 0], np.arange(8.0) * 1.7)


def test_any_source_matching_is_deterministic():
    """Regression: wildcard matching among queued messages must depend on
    virtual arrival times only, never on which sender's thread won the
    wall-clock race to post first.  All sends are posted (eagerly, before
    each sender enters the barrier) by the time rank 0 leaves the barrier,
    so the matching order over the full queue must be identical — in
    source order *and* virtual time — across repeated runs."""

    def prog(ctx):
        if ctx.rank != 0:
            # Staggered virtual send times with different payloads —
            # rank 3 starts latest but its message is tiny, rank 1 starts
            # early with a big payload: arrival order != send order, and
            # both differ from whatever post order the OS produced.
            ctx.clock.advance(1e-5 * ctx.rank)
            nbytes = 1 << (20 - 4 * ctx.rank)
            ctx.comm.send((ctx.rank, np.zeros(nbytes // 8)), 0, tag=4)
            ctx.comm.barrier()
            return None
        ctx.comm.barrier()
        order = []
        for _ in range(ctx.size - 1):
            src, _ = ctx.comm.recv(source=ANY_SOURCE, tag=4)
            order.append(src)
        return order, ctx.clock.now

    runs = [run_spmd(prog, nodes=4) for _ in range(4)]
    orders = [r.values[0][0] for r in runs]
    times = [r.values[0][1] for r in runs]
    assert all(o == orders[0] for o in orders), orders
    assert all(t == times[0] for t in times), times
    # And the order is the virtual-arrival order, not the send order:
    # smaller payloads from later senders overtake rank 1's big message.
    assert orders[0][-1] == 1, orders[0]
