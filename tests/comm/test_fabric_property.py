"""Property tests: indexed matching == global-lock reference semantics.

The sharded fabric replaced a single global mailbox list (scanned linearly
under one lock) with per-(source, tag) FIFO deques per destination shard.
These tests pin the semantic contract of that rewrite with hypothesis:

- every receive — specific or wildcard — picks exactly the message the old
  global-lock scan would have picked (earliest-posted candidate per source,
  then minimum ``(arrival_time, src)`` across sources);
- the pick is a function of *virtual time and per-source post order only*:
  re-posting the same per-source message sequences under a different
  global interleaving (as if sender threads raced differently on the wall
  clock) delivers the identical sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.presets import ohio_cluster
from repro.comm.constants import ANY_SOURCE, ANY_TAG
from repro.comm.fabric import Fabric, Message
from repro.comm.payload import make_payload

DST = 0
N_SOURCES = 4
N_TAGS = 3


@dataclass(frozen=True)
class Spec:
    """One message to post: (src, tag, arrival, uid) — uid is the payload."""

    src: int
    tag: int
    arrival: float
    uid: int


def _post(fabric: Fabric, spec: Spec) -> None:
    fabric.post(
        Message(
            src=spec.src,
            dst=DST,
            tag=spec.tag,
            payload=make_payload(spec.uid),
            send_time=0.0,
            arrival_time=spec.arrival,
        )
    )


def _reference_pick(pending: list[Spec], source: int, tag: int) -> int | None:
    """Index of the message the old global-lock scan would deliver.

    ``pending`` is in post order.  Per source the candidate is the
    earliest-posted matching message (FIFO / non-overtaking); across
    sources the winner has the minimum ``(arrival, src)``.
    """
    candidates: dict[int, tuple[int, Spec]] = {}
    for i, m in enumerate(pending):
        if source != ANY_SOURCE and m.src != source:
            continue
        if tag != ANY_TAG and m.tag != tag:
            continue
        if m.src not in candidates:
            candidates[m.src] = (i, m)
    if not candidates:
        return None
    return min(candidates.values(), key=lambda t: (t[1].arrival, t[1].src))[0]


# Coarse arrival grid so ties (equal arrival, different src/tag) are common.
_arrivals = st.integers(min_value=0, max_value=5).map(lambda n: n / 4.0)

_specs = st.builds(
    Spec,
    src=st.integers(0, N_SOURCES - 1),
    tag=st.integers(0, N_TAGS - 1),
    arrival=_arrivals,
    uid=st.integers(),
)

_patterns = st.tuples(
    st.sampled_from([ANY_SOURCE, 0, 1, 2, 3]),
    st.sampled_from([ANY_TAG, 0, 1, 2]),
)


def _fresh_fabric() -> Fabric:
    return Fabric(ohio_cluster(4), ranks_per_node=1)


def _uniquify(messages: list[Spec]) -> list[Spec]:
    return [Spec(m.src, m.tag, m.arrival, uid=i) for i, m in enumerate(messages)]


@settings(max_examples=60, deadline=None)
@given(messages=st.lists(_specs, max_size=20), patterns=st.lists(_patterns, max_size=30))
def test_every_receive_matches_the_global_lock_reference(messages, patterns):
    """probe() agreement + match() delivers the reference pick, every time."""
    messages = _uniquify(messages)
    fabric = _fresh_fabric()
    for m in messages:
        _post(fabric, m)
    pending = list(messages)
    for source, tag in patterns:
        ref = _reference_pick(pending, source, tag)
        assert fabric.probe(DST, source, tag) == (ref is not None)
        if ref is None:
            continue  # match() would block; the reference agrees it must
        expect = pending.pop(ref)
        got = fabric.match(DST, source, tag, timeout=1.0)
        assert (got.src, got.tag, got.arrival_time, got.payload.data) == (
            expect.src,
            expect.tag,
            expect.arrival,
            expect.uid,
        )
    # Drain what's left with wildcards: must follow the reference order.
    while pending:
        ref = _reference_pick(pending, ANY_SOURCE, ANY_TAG)
        expect = pending.pop(ref)
        got = fabric.match(DST, ANY_SOURCE, ANY_TAG, timeout=1.0)
        assert got.payload.data == expect.uid
    assert fabric.pending_count(DST) == 0


@settings(max_examples=60, deadline=None)
@given(
    messages=st.lists(_specs, min_size=1, max_size=20),
    seed=st.randoms(use_true_random=False),
    drain=_patterns,
)
def test_delivery_order_is_invariant_to_sender_interleaving(messages, seed, drain):
    """Same per-source sequences, different wall-clock post race → same order.

    A reshuffle that preserves each source's own post order models sender
    threads racing differently; the delivered sequence (for any fixed
    receive pattern) must not change, because selection depends only on
    ``(arrival_time, src)`` and per-source post order.
    """
    messages = _uniquify(messages)
    by_src: dict[int, list[Spec]] = {}
    for m in messages:
        by_src.setdefault(m.src, []).append(m)
    # Rebuild a different global interleaving of the same per-source FIFOs.
    cursors = {src: 0 for src in by_src}
    interleaved: list[Spec] = []
    while len(interleaved) < len(messages):
        src = seed.choice([s for s in cursors if cursors[s] < len(by_src[s])])
        interleaved.append(by_src[src][cursors[src]])
        cursors[src] += 1

    source, tag = drain

    def drain_all(order: list[Spec]) -> list[int]:
        fabric = _fresh_fabric()
        for m in order:
            _post(fabric, m)
        out = []
        while fabric.probe(DST, source, tag):
            out.append(fabric.match(DST, source, tag, timeout=1.0).payload.data)
        # Flush the rest so both runs observe every message.
        while fabric.pending_count(DST):
            out.append(fabric.match(DST, ANY_SOURCE, ANY_TAG, timeout=1.0).payload.data)
        return out

    assert drain_all(messages) == drain_all(interleaved)
