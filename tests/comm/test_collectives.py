"""Collective operations across communicator sizes."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.sim.engine import spmd_run
from repro.util.errors import CommunicationError, DeadlockError, ValidationError

SIZES = [1, 2, 3, 4, 5, 7, 8]


def _run(prog, size, **kw):
    return spmd_run(prog, laptop_cluster(num_nodes=size), **kw)


@pytest.mark.parametrize("size", SIZES)
def test_barrier_completes(size):
    res = _run(lambda ctx: ctx.comm.barrier() or ctx.clock.now, size)
    # All ranks leave the barrier at similar (positive for size>1) times.
    if size > 1:
        assert min(res.times) > 0


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(size, root):
    rootr = size - 1 if root == "last" else 0

    def prog(ctx):
        data = {"v": 42} if ctx.rank == rootr else None
        return ctx.comm.bcast(data, root=rootr)

    assert all(v == {"v": 42} for v in _run(prog, size).values)


@pytest.mark.parametrize("size", SIZES)
def test_reduce_sum_scalar(size):
    def prog(ctx):
        return ctx.comm.reduce(ctx.rank + 1, "sum", root=0)

    values = _run(prog, size).values
    assert values[0] == size * (size + 1) // 2
    assert all(v is None for v in values[1:])


@pytest.mark.parametrize("size", SIZES)
def test_reduce_nonzero_root_arrays(size):
    root = size // 2

    def prog(ctx):
        return ctx.comm.reduce(np.full(3, float(ctx.rank)), "max", root=root)

    values = _run(prog, size).values
    np.testing.assert_array_equal(values[root], np.full(3, size - 1.0))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("op,expected", [("sum", "sum"), ("min", 0), ("max", "max"), ("prod", "prod")])
def test_allreduce_ops(size, op, expected):
    def prog(ctx):
        return ctx.comm.allreduce(ctx.rank + 1, op)

    values = _run(prog, size).values
    want = {
        "sum": size * (size + 1) // 2,
        0: 1,
        "max": size,
        "prod": int(np.prod(np.arange(1, size + 1))),
    }[expected if expected != 0 else 0]
    assert all(v == want for v in values)


@pytest.mark.parametrize("size", SIZES)
def test_gather(size):
    def prog(ctx):
        return ctx.comm.gather(ctx.rank * 2, root=0)

    values = _run(prog, size).values
    assert values[0] == [r * 2 for r in range(size)]
    assert all(v is None for v in values[1:])


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    def prog(ctx):
        return ctx.comm.allgather(chr(ord("a") + ctx.rank))

    expected = [chr(ord("a") + r) for r in range(size)]
    assert all(v == expected for v in _run(prog, size).values)


@pytest.mark.parametrize("size", SIZES)
def test_scatter(size):
    def prog(ctx):
        values = [i * i for i in range(ctx.size)] if ctx.rank == 0 else None
        return ctx.comm.scatter(values, root=0)

    assert _run(prog, size).values == [r * r for r in range(size)]


def test_scatter_requires_exact_length():
    def prog(ctx):
        ctx.comm.scatter([1], root=0)

    with pytest.raises(CommunicationError):
        _run(prog, 2)


@pytest.mark.parametrize("size", SIZES)
def test_alltoall(size):
    def prog(ctx):
        return ctx.comm.alltoall([ctx.rank * 100 + i for i in range(ctx.size)])

    values = _run(prog, size).values
    for rank, got in enumerate(values):
        assert got == [src * 100 + rank for src in range(size)]


def test_alltoall_length_check():
    def prog(ctx):
        ctx.comm.alltoall([0])

    with pytest.raises(CommunicationError):
        _run(prog, 3)


def test_reduce_custom_callable_op():
    def prog(ctx):
        return ctx.comm.allreduce(ctx.rank + 1, lambda a, b: a * 10 + b if a > b else b * 10 + a)

    # Just checks callables are accepted and applied consistently.
    values = _run(prog, 3).values
    assert len(set(map(str, values))) == 1


def test_unknown_op_rejected():
    def prog(ctx):
        ctx.comm.allreduce(1, "median")

    with pytest.raises(ValidationError):
        _run(prog, 2)


def test_reduce_tree_depth_is_logarithmic():
    """The paper: global combine takes up to log2(n) parallel steps."""

    def prog(ctx):
        payload = np.zeros(125_000)  # 1 MB -> 1 ms wire per hop
        ctx.comm.reduce(payload, "sum", root=0)
        return ctx.clock.now

    t8 = max(_run(prog, 8).times)
    t2 = max(_run(prog, 2).times)
    # 8 ranks = 3 rounds, 2 ranks = 1 round: ~3x, never 7x (linear).
    assert t8 / t2 < 4.5


def test_collectives_interleave_with_p2p():
    def prog(ctx):
        total = ctx.comm.allreduce(ctx.rank, "sum")
        if ctx.rank == 0:
            ctx.comm.send("extra", 1, tag=11)
        if ctx.rank == 1:
            assert ctx.comm.recv(source=0, tag=11) == "extra"
        ctx.comm.barrier()
        return total

    assert _run(prog, 3).values == [3, 3, 3]


@pytest.mark.parametrize("size", SIZES)
def test_scan_inclusive_prefix(size):
    def prog(ctx):
        return ctx.comm.scan(ctx.rank + 1, "sum")

    values = _run(prog, size).values
    assert values == [sum(range(1, r + 2)) for r in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_exscan_exclusive_prefix(size):
    def prog(ctx):
        return ctx.comm.exscan(ctx.rank + 1, "sum")

    values = _run(prog, size).values
    assert values[0] is None
    assert values[1:] == [sum(range(1, r + 1)) for r in range(1, size)]


def test_scan_with_max_op():
    def prog(ctx):
        return ctx.comm.scan([3, 1, 4, 1, 5][ctx.rank], "max")

    assert _run(prog, 5).values == [3, 3, 4, 4, 5]


@pytest.mark.parametrize("size", SIZES)
def test_reduce_scatter(size):
    def prog(ctx):
        values = [ctx.rank * 10 + slot for slot in range(ctx.size)]
        return ctx.comm.reduce_scatter(values, "sum")

    values = _run(prog, size).values
    for slot, got in enumerate(values):
        assert got == sum(r * 10 + slot for r in range(size))


def test_reduce_scatter_length_check():
    def prog(ctx):
        ctx.comm.reduce_scatter([1], "sum")

    with pytest.raises(CommunicationError):
        _run(prog, 3)


def test_scan_exscan_mismatch_deadlocks_not_mispairs():
    """Regression: exscan must use its own op id.  When it shared
    ``_OP_SCAN``'s, a mismatched program (one rank in ``scan``, another in
    ``exscan``) silently paired rounds across the two algorithms and
    returned wrong prefixes; with distinct ids it deadlocks loudly."""

    def prog(ctx):
        if ctx.rank == 0:
            return ctx.comm.scan(1, "sum")
        return ctx.comm.exscan(1, "sum")

    with pytest.raises(DeadlockError):
        spmd_run(
            prog,
            laptop_cluster(num_nodes=2),
            recv_timeout=0.3,
            wall_timeout=10.0,
        )


def test_exscan_round_budget_checked_before_any_send(monkeypatch):
    """An over-budget exscan must raise up front on every rank (nobody has
    sent yet, so nobody is left hung mid-collective)."""
    from repro.comm import collectives

    monkeypatch.setattr(collectives, "_MAX_ROUNDS", 2)

    def prog(ctx):
        return ctx.comm.exscan(ctx.rank, "sum")

    # 4 ranks need 2 inclusive-scan rounds + 1 shift round = 3 > 2.
    with pytest.raises(CommunicationError, match="round"):
        _run(prog, 4, wall_timeout=10.0)


def test_scan_then_exscan_same_program():
    """Back-to-back scan and exscan draw distinct tag sequences."""

    def prog(ctx):
        inc = ctx.comm.scan(ctx.rank + 1, "sum")
        exc = ctx.comm.exscan(ctx.rank + 1, "sum")
        return inc, exc

    values = _run(prog, 5).values
    for rank, (inc, exc) in enumerate(values):
        assert inc == sum(r + 1 for r in range(rank + 1))
        assert exc == (sum(r + 1 for r in range(rank)) if rank else None)
