"""Cartesian communicator."""

import pytest

from repro.comm.cart import CartComm
from repro.comm.constants import PROC_NULL
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd


def test_auto_dims_from_ndims():
    def prog(ctx):
        cart = CartComm(ctx.comm, ndims=2)
        return cart.dims, cart.coords

    values = run_spmd(prog, nodes=6).values
    assert values[0][0] == (3, 2)
    assert values[5][1] == (2, 1)


def test_explicit_dims_validated():
    def prog(ctx):
        CartComm(ctx.comm, dims=(2, 2))

    with pytest.raises(ConfigurationError):
        run_spmd(prog, nodes=6)


def test_needs_dims_or_ndims():
    def prog(ctx):
        CartComm(ctx.comm)

    with pytest.raises(ConfigurationError):
        run_spmd(prog, nodes=2)


def test_shift_non_periodic_borders():
    def prog(ctx):
        cart = CartComm(ctx.comm, dims=(4,))
        return cart.shift(0, 1)

    values = run_spmd(prog, nodes=4).values
    assert values[0] == (PROC_NULL, 1)
    assert values[1] == (0, 2)
    assert values[3] == (2, PROC_NULL)


def test_shift_periodic_wraps():
    def prog(ctx):
        cart = CartComm(ctx.comm, dims=(4,), periodic=(True,))
        return cart.shift(0, 1)

    values = run_spmd(prog, nodes=4).values
    assert values[0] == (3, 1)
    assert values[3] == (2, 0)


def test_shift_axis_bounds():
    def prog(ctx):
        cart = CartComm(ctx.comm, dims=(2,))
        cart.shift(1, 1)

    with pytest.raises(ConfigurationError):
        run_spmd(prog, nodes=2)


def test_neighbors_2d():
    def prog(ctx):
        cart = CartComm(ctx.comm, dims=(2, 2))
        return cart.neighbors()

    values = run_spmd(prog, nodes=4).values
    n0 = values[0]  # coords (0, 0)
    assert n0[(0, +1)] == 2 and n0[(0, -1)] == PROC_NULL
    assert n0[(1, +1)] == 1 and n0[(1, -1)] == PROC_NULL


def test_halo_exchange_through_cart():
    """End-to-end: shifts drive a correct ring exchange."""

    def prog(ctx):
        cart = CartComm(ctx.comm, dims=(ctx.size,), periodic=(True,))
        src, dst = cart.shift(0, 1)
        return ctx.comm.sendrecv(ctx.rank, dst, src, 9, 9)

    values = run_spmd(prog, nodes=5).values
    assert values == [(r - 1) % 5 for r in range(5)]


def test_periodic_length_mismatch():
    def prog(ctx):
        CartComm(ctx.comm, dims=(2, 1), periodic=(True,))

    with pytest.raises(ConfigurationError):
        run_spmd(prog, nodes=2)
