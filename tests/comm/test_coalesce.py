"""Per-neighbour halo message coalescing (single payload per face)."""

import numpy as np
import pytest

from repro.comm.coalesce import HaloCoalescer
from repro.core.api import StencilKernel, shifted
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError
from tests.conftest import run_spmd

WORK = WorkModel(name="st", flops_per_elem=8, bytes_per_elem=32)
GRID = np.random.default_rng(7).random((24, 20))


# ------------------------------------------------------------------ unit
def test_single_strip_roundtrip():
    """The one-array fast path: strip lands straight in the output view."""

    def prog(ctx):
        co = HaloCoalescer(ctx.comm)
        co.register("face", [(2, 5)], np.dtype(np.float64))
        assert co.strips_per_message("face") == 1
        peer = 1 - ctx.rank
        payload = np.full((2, 5), float(ctx.rank) + 1.0)
        out = np.zeros((4, 7))
        req = co.post_recv("face", peer, 9, [out[1:3, 1:6]])
        co.send("face", peer, 9, [payload], wire_bytes=80.0, parity=0)
        req.wait()
        assert (out[1:3, 1:6] == float(peer) + 1.0).all()
        assert out[0].sum() == 0  # only the view was written
        return True

    assert run_spmd(prog, nodes=2).values == [True, True]


def test_multi_strip_roundtrip_scatters_to_views():
    """Three strips of different shapes ride one message and scatter back
    into strided views of distinct arrays."""

    def prog(ctx):
        co = HaloCoalescer(ctx.comm)
        shapes = [(2, 4), (1, 6), (3, 3)]
        co.register("k", shapes, np.dtype(np.float64))
        assert co.strips_per_message("k") == 3
        peer = 1 - ctx.rank
        strips = [
            np.arange(np.prod(s)).reshape(s) * (ctx.rank + 1.0) for s in shapes
        ]
        arrays = [np.zeros((6, 8)) for _ in shapes]
        outs = [a[1 : 1 + s[0], 2 : 2 + s[1]] for a, s in zip(arrays, shapes)]
        req = co.post_recv("k", peer, 4, outs)
        co.send("k", peer, 4, strips, wire_bytes=184.0, parity=1)
        req.wait()
        for a, s in zip(arrays, shapes):
            expected = np.arange(np.prod(s)).reshape(s) * (peer + 1.0)
            np.testing.assert_array_equal(a[1 : 1 + s[0], 2 : 2 + s[1]], expected)
            assert a.sum() == expected.sum()  # nothing outside the view
        return True

    assert run_spmd(prog, nodes=2).values == [True, True]


def test_parity_double_buffering_keeps_consecutive_sends_safe():
    """Two back-to-back sends on alternating parity must not clobber each
    other even though the receiver drains them late (owned=True buffers)."""

    def prog(ctx):
        co = HaloCoalescer(ctx.comm)
        co.register("f", [(3,)], np.dtype(np.float64))
        peer = 1 - ctx.rank
        out0, out1 = np.zeros(3), np.zeros(3)
        r0 = co.post_recv("f", peer, 1, [out0])
        r1 = co.post_recv("f", peer, 1, [out1])
        base = 10.0 * (ctx.rank + 1)
        co.send("f", peer, 1, [np.full(3, base)], wire_bytes=24.0, parity=0)
        co.send("f", peer, 1, [np.full(3, base + 1)], wire_bytes=24.0, parity=1)
        r0.wait()
        r1.wait()
        peer_base = 10.0 * (peer + 1)
        return (out0 == peer_base).all() and (out1 == peer_base + 1).all()

    assert run_spmd(prog, nodes=2).values == [True, True]


def test_registration_and_layout_validation():
    def prog(ctx):
        co = HaloCoalescer(ctx.comm)
        co.register("a", [(2, 2)], np.dtype(np.float64))
        with pytest.raises(ConfigurationError, match="already registered"):
            co.register("a", [(2, 2)], np.dtype(np.float64))
        with pytest.raises(ConfigurationError, match="at least one strip"):
            co.register("empty", [], np.dtype(np.float64))
        with pytest.raises(ConfigurationError, match="packs 1 strip"):
            co.send("a", 0, 1, [np.zeros((2, 2)), np.zeros((2, 2))], 32.0, 0)
        with pytest.raises(ConfigurationError, match="delivers 1 strip"):
            co.post_recv("a", 0, 1, [np.zeros((2, 2)), np.zeros((2, 2))])
        return True

    assert run_spmd(prog, nodes=1).values == [True]


# ------------------------------------------------------------ integration
def _coupled(src, dst, region, param):
    """Update the grid from field v's neighbours, then evolve v itself —
    a genuinely mutated exchange field whose halos must travel."""
    v = param["v"]
    dst[region] = 0.25 * (
        shifted(v, region, (1, 0)) + shifted(v, region, (-1, 0))
        + shifted(v, region, (0, 1)) + shifted(v, region, (0, -1))
    )
    v[region] = src[region]


def _coupled_program(ctx, iters=4, mix="cpu"):
    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil()
    st.configure(
        StencilKernel(_coupled, 1, WORK),
        GRID.shape,
        static_fields={"v": GRID * 2.0},
        exchange_fields=("v",),
    )
    st.set_global_grid(GRID)
    st.run(iters)
    grid = st.gather_global()
    env.finalize()
    return grid


def _coupled_seq(iters=4):
    src = np.zeros(tuple(s + 2 for s in GRID.shape))
    v = np.zeros_like(src)
    region = tuple(slice(1, 1 + s) for s in GRID.shape)
    src[region] = GRID
    v[region] = GRID * 2.0
    dst = np.zeros_like(src)

    class _Param:
        def __getitem__(self, name):
            return v

    for _ in range(iters):
        _coupled(src, dst, region, _Param())
        src, dst = dst, src
        mask = np.ones_like(src, dtype=bool)
        mask[region] = False
        src[mask] = 0
        v[mask] = 0
    return src[region]


@pytest.mark.parametrize("nodes", [2, 4])
def test_mutable_exchange_field_matches_sequential_bitwise(nodes):
    """The coupled grid+field sweep only works if v's halos really travel
    each step — and they ride the grid's coalesced messages."""
    res = run_spmd(_coupled_program, nodes=nodes)
    np.testing.assert_array_equal(res.values[0], _coupled_seq())


def test_exchange_field_coalesces_strips_not_messages():
    """Adding an exchanged field doubles the strips per payload but leaves
    the message count untouched, while the charged bytes double."""
    iters = 3

    def program(ctx, exchange):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(
            StencilKernel(_coupled, 1, WORK),
            GRID.shape,
            static_fields={"v": GRID * 2.0},
            exchange_fields=("v",) if exchange else (),
        )
        st.set_global_grid(GRID)
        st.run(iters)
        env.finalize()

    plain = run_spmd(program, nodes=2, trace=True, kwargs={"exchange": False})
    coupled_res = run_spmd(program, nodes=2, trace=True, kwargs={"exchange": True})
    for p, c in zip(plain.traces, coupled_res.traces):
        assert p.counters["halo.msgs"] == iters  # dims=(2,1): one neighbour
        assert c.counters["halo.msgs"] == iters  # unchanged by the field
        assert p.counters["halo.strips"] == iters
        assert c.counters["halo.strips"] == 2 * iters
        assert c.counters["comm.bytes_sent"] == 2 * p.counters["comm.bytes_sent"]


def test_exchange_field_must_be_declared_and_typed():
    def undeclared(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(
            StencilKernel(_coupled, 1, WORK), GRID.shape, exchange_fields=("v",)
        )

    with pytest.raises(ConfigurationError, match="not a configured static field"):
        run_spmd(undeclared, nodes=1)

    def wrong_dtype(ctx):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil()
        st.configure(
            StencilKernel(_coupled, 1, WORK),
            GRID.shape,
            static_fields={"v": (GRID * 2.0).astype(np.float32)},
            exchange_fields=("v",),
        )

    with pytest.raises(ConfigurationError, match="kernel dtype"):
        run_spmd(wrong_dtype, nodes=1)
