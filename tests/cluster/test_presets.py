"""Cluster presets (the paper's platform)."""

import pytest

from repro.cluster.presets import laptop_cluster, nvidia_m2070, ohio_cluster
from repro.util.units import GB, KIB


def test_ohio_cluster_matches_paper_platform():
    cluster = ohio_cluster()
    assert cluster.num_nodes == 32
    assert cluster.node.cpu.cores == 12
    assert cluster.node.num_gpus == 2
    assert cluster.total_gpus == 64
    assert cluster.node.memory == pytest.approx(47 * GB)
    assert cluster.node.gpus[0].device_mem == pytest.approx(6 * GB)


def test_ohio_cluster_scalable():
    assert ohio_cluster(4).num_nodes == 4
    assert ohio_cluster(1, gpus_per_node=1).node.num_gpus == 1
    assert ohio_cluster(1, gpus_per_node=0).node.num_gpus == 0


def test_m2070_shared_memory_is_fermi_48k():
    assert nvidia_m2070().shared_mem_per_sm == 48 * KIB


def test_m2070_atomics_gap():
    gpu = nvidia_m2070()
    assert gpu.shared_atomic_cost < gpu.atomic_cost / 5


def test_laptop_cluster_shapes():
    c = laptop_cluster(num_nodes=3, cores=2, gpus_per_node=2)
    assert c.num_nodes == 3
    assert c.node.cpu.cores == 2
    assert c.node.num_gpus == 2
