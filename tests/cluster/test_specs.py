"""Hardware spec dataclasses."""

import pytest

from repro.cluster.presets import nvidia_m2070, qdr_infiniband, xeon_5650
from repro.cluster.specs import ClusterSpec, CPUSpec, InterconnectSpec, NodeSpec
from repro.util.errors import ValidationError
from repro.util.units import GB, GFLOPS, KIB, US


def _cpu(**kw):
    base = dict(name="c", cores=4, core_flops=8 * GFLOPS, mem_bandwidth=20 * GB, cache_bytes=8 * 1024 * KIB)
    base.update(kw)
    return CPUSpec(**base)


def test_cpu_total_flops():
    assert _cpu().total_flops == pytest.approx(32 * GFLOPS)


@pytest.mark.parametrize("field,value", [("cores", 0), ("core_flops", 0), ("mem_bandwidth", -1)])
def test_cpu_validation(field, value):
    with pytest.raises(ValidationError):
        _cpu(**{field: value})


def test_gpu_validation():
    gpu = nvidia_m2070()
    assert gpu.sms == 14
    with pytest.raises(ValidationError):
        type(gpu)(**{**gpu.__dict__, "pcie_bandwidth": 0})


def test_interconnect_transfer_time():
    link = InterconnectSpec(name="l", latency=2 * US, bandwidth=1 * GB)
    assert link.transfer_time(0) == pytest.approx(2e-6)
    assert link.transfer_time(1 * GB) == pytest.approx(1.0 + 2e-6)
    with pytest.raises(ValidationError):
        link.transfer_time(-1)


def test_interconnect_validation():
    with pytest.raises(ValidationError):
        InterconnectSpec(name="l", latency=-1, bandwidth=1)
    with pytest.raises(ValidationError):
        InterconnectSpec(name="l", latency=0, bandwidth=0)


def test_node_defaults_and_gpu_count():
    node = NodeSpec(cpu=_cpu(), gpus=(nvidia_m2070(),) * 2)
    assert node.num_gpus == 2
    assert node.intra_link.name == "shared-memory"


def test_cluster_totals_and_with_nodes():
    node = NodeSpec(cpu=_cpu(), gpus=(nvidia_m2070(),))
    cluster = ClusterSpec(name="t", node=node, num_nodes=8, network=qdr_infiniband())
    assert cluster.total_cores == 32
    assert cluster.total_gpus == 8
    scaled = cluster.with_nodes(2)
    assert scaled.num_nodes == 2
    assert scaled.node is node
    with pytest.raises(ValidationError):
        ClusterSpec(name="t", node=node, num_nodes=0, network=qdr_infiniband())


def test_link_between_intra_vs_inter():
    node = NodeSpec(cpu=_cpu())
    cluster = ClusterSpec(name="t", node=node, num_nodes=3, network=qdr_infiniband())
    assert cluster.link_between(1, 1) is node.intra_link
    assert cluster.link_between(0, 2) is cluster.network
    with pytest.raises(ValidationError):
        cluster.link_between(0, 3)


def test_xeon_preset_matches_paper():
    cpu = xeon_5650()
    assert cpu.cores == 12
    assert cpu.total_flops == pytest.approx(12 * 10.64 * GFLOPS)
