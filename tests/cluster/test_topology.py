"""Cartesian topology helpers (MPI_Dims_create semantics)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.topology import coords_of, dims_create, rank_of
from repro.util.errors import ValidationError


@pytest.mark.parametrize(
    "nprocs,ndims,expected",
    [
        (12, 2, (4, 3)),
        (8, 3, (2, 2, 2)),
        (7, 2, (7, 1)),
        (1, 3, (1, 1, 1)),
        (384, 2, (24, 16)),
        (384, 3, (8, 8, 6)),
    ],
)
def test_dims_create_balanced(nprocs, ndims, expected):
    assert dims_create(nprocs, ndims) == expected


def test_dims_create_respects_constraints():
    assert dims_create(12, 2, [0, 2]) == (6, 2)
    assert dims_create(12, 2, [3, 0]) == (3, 4)
    assert dims_create(12, 2, [3, 4]) == (3, 4)


def test_dims_create_invalid_constraints():
    with pytest.raises(ValidationError):
        dims_create(12, 2, [5, 0])
    with pytest.raises(ValidationError):
        dims_create(12, 2, [3, 5])
    with pytest.raises(ValidationError):
        dims_create(12, 1, [6])


def test_dims_create_bad_args():
    with pytest.raises(ValidationError):
        dims_create(0, 2)
    with pytest.raises(ValidationError):
        dims_create(4, 0)
    with pytest.raises(ValidationError):
        dims_create(4, 2, [0])


@given(st.integers(1, 512), st.integers(1, 4))
def test_dims_create_product_and_order(nprocs, ndims):
    dims = dims_create(nprocs, ndims)
    assert math.prod(dims) == nprocs
    assert list(dims) == sorted(dims, reverse=True)


@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
def test_coords_rank_roundtrip(a, b, c):
    dims = (a, b, c)
    total = a * b * c
    for rank in range(total):
        coords = coords_of(rank, dims)
        assert all(0 <= x < d for x, d in zip(coords, dims))
        assert rank_of(coords, dims) == rank


def test_coords_of_out_of_range():
    with pytest.raises(ValidationError):
        coords_of(6, (2, 3))
    with pytest.raises(ValidationError):
        rank_of((2, 0), (2, 3))
    with pytest.raises(ValidationError):
        rank_of((0,), (2, 3))
