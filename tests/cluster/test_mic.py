"""Xeon Phi extension: the runtimes must work unchanged on MIC clusters."""

import numpy as np
import pytest

from repro.cluster.mic import mic_cluster, xeon_phi_5110p
from repro.core import GRKernel, RuntimeEnv, StencilKernel, shifted
from repro.core.partition import block_partition
from repro.device import WorkModel
from repro.device.gpu import GPUDevice
from repro.sim.engine import spmd_run


def test_phi_spec_numbers():
    phi = xeon_phi_5110p()
    assert phi.sms == 60
    assert phi.flops == pytest.approx(1.011e12)
    assert phi.mem_bandwidth == pytest.approx(320e9)


def test_mic_cluster_shape():
    c = mic_cluster(num_nodes=4, mics_per_node=2)
    assert c.num_nodes == 4
    assert c.node.num_gpus == 2
    assert "Phi" in c.node.gpus[0].name


def test_phi_beats_m2070_on_dp_compute():
    from repro.cluster.presets import nvidia_m2070

    w = WorkModel(name="dp", flops_per_elem=1000, bytes_per_elem=8,
                  gpu_efficiency=0.5, cpu_efficiency=0.5)
    phi = GPUDevice(xeon_phi_5110p())
    m2070 = GPUDevice(nvidia_m2070())
    assert phi.elem_time(w) < m2070.elem_time(w)


def test_generalized_reduction_on_mic_cluster():
    K = 6
    data = np.random.default_rng(0).random((4000, 2))
    work = WorkModel(name="h", flops_per_elem=20, bytes_per_elem=16,
                     atomics_per_elem=1, num_reduction_keys=K)

    def emit(obj, chunk, start, param):
        keys = np.minimum((chunk[:, 0] * K).astype(int), K - 1)
        obj.insert_many(keys, np.ones(len(chunk)))

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")  # the "accelerator" is the Phi
        gr = env.get_GR()
        gr.set_kernel(GRKernel(emit, "sum", K, 1, work))
        offs = block_partition(len(data), ctx.size)
        gr.set_input(data[offs[ctx.rank]: offs[ctx.rank + 1]],
                     global_start=int(offs[ctx.rank]))
        gr.start()
        return gr.get_global_reduction()

    res = spmd_run(prog, mic_cluster(num_nodes=2))
    ref = np.zeros((K, 1))
    np.add.at(ref[:, 0], np.minimum((data[:, 0] * K).astype(int), K - 1), 1.0)
    np.testing.assert_allclose(res.values[0], ref)


def test_stencil_on_mic_cluster():
    grid = np.random.default_rng(1).random((20, 20))
    work = WorkModel(name="s", flops_per_elem=8, bytes_per_elem=32)

    def avg(src, dst, region, param):
        dst[region] = 0.5 * (shifted(src, region, (1, 0)) + shifted(src, region, (0, 1)))

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu+1gpu")
        st = env.get_stencil()
        st.configure(StencilKernel(avg, 1, work), grid.shape)
        st.set_global_grid(grid)
        st.run(2)
        return st.gather_global()

    res = spmd_run(prog, mic_cluster(num_nodes=2))
    # sequential reference
    src = np.zeros((22, 22))
    src[1:-1, 1:-1] = grid
    dst = np.zeros_like(src)
    region = (slice(1, 21), slice(1, 21))
    for _ in range(2):
        avg(src, dst, region, None)
        src, dst = dst, src
        src[0] = src[-1] = 0
        src[:, 0] = src[:, -1] = 0
    np.testing.assert_allclose(res.values[0], src[region], rtol=1e-12)


def test_mic_offload_faster_than_host_for_wide_kernels():
    """The point of the extension: a Phi-equipped node beats CPU-only."""
    data = np.random.default_rng(2).random((6000, 2))
    work = WorkModel(name="w", flops_per_elem=400, bytes_per_elem=16,
                     cpu_efficiency=0.5, gpu_efficiency=0.5,
                     atomics_per_elem=1, num_reduction_keys=4,
                     transfer_bytes_per_elem=16)

    def emit(obj, chunk, start, param):
        obj.insert_many(np.zeros(len(chunk), dtype=np.int64), chunk[:, 0])

    def prog(ctx, mix):
        env = RuntimeEnv(ctx, mix)
        gr = env.get_GR()
        gr.set_kernel(GRKernel(emit, "sum", 4, 1, work.replace(num_reduction_keys=4)))
        gr.set_input(data, model_local_elems=len(data) * 2000)
        gr.start()
        return None

    cpu = spmd_run(prog, mic_cluster(1), kwargs={"mix": "cpu"}).makespan
    both = spmd_run(prog, mic_cluster(1), kwargs={"mix": "cpu+1gpu"}).makespan
    assert both < cpu
