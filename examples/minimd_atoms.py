"""MiniMD on the framework — Lennard-Jones forces over a neighbor list.

Usage:  python examples/minimd_atoms.py
"""

import numpy as np

from repro.apps.minimd import (
    DEVICE_NODE_BYTES,
    DT,
    MiniMDConfig,
    make_force_work,
)
from repro.cluster import ohio_cluster
from repro.core import IRKernel, RuntimeEnv
from repro.data import build_neighbor_edges, fcc_lattice
from repro.sim import spmd_run

CFG = MiniMDConfig(functional_cells=8, simulated_steps=5)


def lj_force(obj, edges, edge_data, nodes, cutoff2):
    """ir_edge_compute_fp: Lennard-Jones pair force."""
    d = nodes[edges[:, 0], 0:3] - nodes[edges[:, 1], 0:3]
    r2 = np.maximum(np.einsum("nd,nd->n", d, d), 1e-12)
    sr6 = (1.0 / r2) ** 3
    fmag = np.where(r2 < cutoff2, 24.0 * (2.0 * sr6 * sr6 - sr6) / r2, 0.0)
    f = fmag[:, None] * d
    obj.insert_many(edges[:, 0], f)
    obj.insert_many(edges[:, 1], -f)


def main(ctx):
    pos = fcc_lattice(CFG.functional_cells, jitter=0.03, seed=CFG.seed)
    atoms = np.concatenate([pos, np.zeros_like(pos)], axis=1)
    edges = build_neighbor_edges(pos, CFG.cutoff)

    env = RuntimeEnv(ctx, "cpu+2gpu")
    ir = env.get_IR()
    ir.set_kernel(IRKernel(lj_force, "sum", 3, make_force_work(ctx.node, CFG)))
    ir.set_parameter(CFG.cutoff**2)
    ir.set_mesh(edges, atoms, model_edges=CFG.n_edges, model_nodes=CFG.n_atoms,
                device_node_bytes=DEVICE_NODE_BYTES)

    for _ in range(CFG.simulated_steps):
        ir.start()
        forces = ir.get_local_reduction()
        updated = ir.get_local_nodes()
        updated[:, 3:6] += forces * DT
        updated[:, 0:3] += updated[:, 3:6] * DT
        ir.update_nodedata(updated)
    env.finalize()
    v = ir.get_local_nodes()[:, 3:6]
    return float((0.5 * np.einsum("nd,nd->n", v, v)).sum())


if __name__ == "__main__":
    result = spmd_run(main, ohio_cluster(4))
    print(f"local kinetic energies: {[round(v, 6) for v in result.values]}")
    print(f"simulated time for {CFG.simulated_steps} steps on 4 nodes: "
          f"{result.makespan * 1e3:.2f} ms")
