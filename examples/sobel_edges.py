"""Sobel edge detection on the framework — the paper's 9-point stencil.

Usage:  python examples/sobel_edges.py
"""

import numpy as np

from repro.apps.sobel import GX, GY, SobelConfig, make_work
from repro.cluster import ohio_cluster
from repro.core import RuntimeEnv, StencilKernel, shifted
from repro.data import synthetic_image
from repro.sim import spmd_run

CFG = SobelConfig(functional_shape=(512, 512), simulated_steps=2)


def sobel(src, dst, region, _param):
    """stencil_fp: convolve both 3x3 masks, write gradient magnitude."""
    gx = np.zeros_like(src[region])
    gy = np.zeros_like(src[region])
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            neighbour = shifted(src, region, (dy, dx))
            gx += GX[dy + 1, dx + 1] * neighbour
            gy += GY[dy + 1, dx + 1] * neighbour
    dst[region] = np.sqrt(gx * gx + gy * gy)


def main(ctx):
    env = RuntimeEnv(ctx, "cpu+2gpu")
    st = env.get_stencil()
    st.configure(StencilKernel(sobel, 1, make_work(ctx.node), dtype=np.dtype(np.float32)),
                 CFG.functional_shape, model_shape=CFG.shape)
    st.set_global_grid(synthetic_image(CFG.functional_shape, seed=CFG.seed))
    st.run(CFG.simulated_steps)
    env.finalize()
    return st.gather_global()


if __name__ == "__main__":
    result = spmd_run(main, ohio_cluster(4))
    edges = result.values[0]
    strong = (edges > np.percentile(edges, 95)).mean()
    print(f"edge map {edges.shape}: {strong:.1%} strong-edge pixels, max {edges.max():.2f}")
    print(f"simulated time on 4 nodes: {result.makespan * 1e3:.2f} ms")
