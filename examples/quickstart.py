"""Quickstart: all three patterns in one small program.

Runs a tiny histogram (generalized reduction), a degree-weighted graph
accumulation (irregular reduction), and a 2-D smoothing pass (stencil) on a
simulated 2-node CPU+GPU cluster, printing results and simulated times.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import laptop_cluster
from repro.core import GRKernel, IRKernel, RuntimeEnv, StencilKernel, shifted
from repro.core.partition import block_partition
from repro.device import WorkModel
from repro.sim import spmd_run

BINS = 16
GRID = np.add.outer(np.linspace(0, 1, 24), np.linspace(0, 2, 24))
RNG = np.random.default_rng(1)
VALUES = RNG.random(20_000)
EDGES = RNG.integers(0, 500, size=(4_000, 2))
EDGES = EDGES[EDGES[:, 0] != EDGES[:, 1]]
WEIGHTS = RNG.random(len(EDGES))


def histogram_emit(obj, data, start, _param):
    """gr_emit_fp: bin each value, count occurrences."""
    keys = np.minimum((data * BINS).astype(int), BINS - 1)
    obj.insert_many(keys, np.ones(len(data)))


def weight_edges(obj, edges, weights, nodes, _param):
    """ir_edge_compute_fp: accumulate edge weight onto both endpoints."""
    obj.insert_many(edges[:, 0], weights)
    obj.insert_many(edges[:, 1], weights)


def smooth(src, dst, region, _param):
    """stencil_fp: 5-point average."""
    dst[region] = 0.2 * (
        src[region]
        + shifted(src, region, (1, 0))
        + shifted(src, region, (-1, 0))
        + shifted(src, region, (0, 1))
        + shifted(src, region, (0, -1))
    )


def main(ctx):
    env = RuntimeEnv(ctx, "cpu+1gpu")
    light = WorkModel(name="demo", flops_per_elem=8, bytes_per_elem=16,
                      atomics_per_elem=1, num_reduction_keys=BINS)

    # 1. Generalized reduction: a distributed histogram.
    gr = env.get_GR()
    gr.set_kernel(GRKernel(histogram_emit, "sum", BINS, 1, light))
    offs = block_partition(len(VALUES), ctx.size)
    gr.set_input(VALUES[offs[ctx.rank] : offs[ctx.rank + 1]], global_start=int(offs[ctx.rank]))
    gr.start()
    hist = gr.get_global_reduction()[:, 0]

    # 2. Irregular reduction: weighted degree of every graph node.
    ir = env.get_IR()
    ir.set_kernel(IRKernel(weight_edges, "sum", 1,
                           light.replace(name="degree", num_reduction_keys=500)))
    ir.set_mesh(EDGES, np.zeros(500), WEIGHTS)
    ir.start()
    lo, hi = ir.local_node_range
    degrees = ir.get_local_reduction()[:, 0]

    # 3. Stencil: one smoothing sweep of a small grid.
    st = env.get_stencil()
    st.configure(StencilKernel(smooth, 1, light.replace(name="smooth", atomics_per_elem=0)),
                 GRID.shape)
    st.set_global_grid(GRID)
    st.run(3)
    smoothed = st.gather_global()

    env.finalize()
    return hist, (lo, hi, degrees), smoothed


if __name__ == "__main__":
    result = spmd_run(main, laptop_cluster(num_nodes=2))
    hist, _, smoothed = result.values[0]
    print("histogram:", hist.astype(int))
    total_degree = sum(part[2].sum() for part in (v[1] for v in result.values))
    print(f"sum of weighted degrees: {total_degree:.3f} (expected {2 * WEIGHTS.sum():.3f})")
    if smoothed is not None:
        print(f"smoothed grid mean: {smoothed.mean():.4f}")
    print(f"simulated time: {result.makespan * 1e3:.3f} ms across {result.nranks} nodes")
