"""Job-service smoke: a mixed batch over HTTP, bit-identical to direct runs.

Starts the multi-tenant job server in-process, submits a mixed batch of
jobs over its HTTP API — heat3d, kmeans, moldyn, plus a faulty
checkpointed heat3d run — then checks that every job completes, that each
served makespan is bit-identical (repr-equal) to running the same spec
directly through the engine, and that resubmitting an identical spec is
answered from the content-addressed result cache without re-execution.

This is also the CI "service smoke" step.

Usage:  python examples/serve_smoke.py
"""

from repro.faults import FaultPlan, RankCrash
from repro.serve import JobServer, JobSpec, ServeClient, execute_job

HEAT = {"functional_shape": [12, 12, 12], "simulated_steps": 2}
BATCH = [
    JobSpec(app="heat3d", nodes=2, preset="laptop", mix="cpu", params=HEAT),
    JobSpec(
        app="kmeans",
        nodes=2,
        preset="laptop",
        mix="cpu",
        params={"functional_points": 3000, "k": 8},
    ),
    JobSpec(
        app="moldyn",
        nodes=2,
        preset="laptop",
        mix="cpu",
        params={"functional_nodes": 800, "simulated_steps": 2},
    ),
    # One lossy run that crashes rank 1 and recovers from a checkpoint.
    JobSpec(
        app="heat3d",
        nodes=2,
        preset="laptop",
        mix="cpu",
        params={"functional_shape": [12, 12, 12], "simulated_steps": 4},
        options={"reliable": True, "checkpoint_every": 2},
        fault_plan=FaultPlan.lossy(
            seed=7,
            drop=0.02,
            dup=0.01,
            delay=0.02,
            max_delay=1e-4,
            crashes=[RankCrash(rank=1, at_time=0.05, restart_cost=0.5)],
        ).to_dict(),
    ),
]


def main() -> None:
    print(f"direct runs ({len(BATCH)} specs) ...")
    direct = [execute_job(spec) for spec in BATCH]

    with JobServer(port=0, rank_budget=8) as server:
        client = ServeClient(server.url)
        print(f"server up at {server.url}; submitting the same batch")
        jobs = [client.submit(spec) for spec in BATCH]
        for spec, job, expected in zip(BATCH, jobs, direct):
            done = client.wait(job["id"], timeout=600.0)
            assert done["state"] == "done", (spec.app, done)
            served = client.result(job["id"])["result"]
            match = repr(served["makespan"]) == repr(expected["makespan"])
            assert match, (spec.app, served["makespan"], expected["makespan"])
            print(
                f"  {job['id']}  {spec.app:<7} makespan={served['makespan']!r}"
                "  == direct run"
            )
        faulty = client.result(jobs[-1]["id"])["result"]
        assert faulty["fault_stats"]["crashes_consumed"] == 1

        again = client.submit(BATCH[0])
        assert again["cached"] and again["state"] == "done"
        stats = client.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["executed"] == len(BATCH)  # the resubmit ran nothing
        print(
            f"resubmit: cache hit ({stats['cache']['hits']} hit, "
            f"{stats['executed']} jobs executed)"
        )
    print("service smoke OK: all jobs bit-identical to direct runs")


if __name__ == "__main__":
    main()
