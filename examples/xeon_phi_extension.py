"""Extension (paper's future work): Heat3D on an Intel Xeon Phi cluster.

The paper's conclusion names "clusters involving Intel MIC coprocessors"
as future work; the simulator treats a Knights Corner card as another
PCIe offload accelerator, so every runtime works unchanged — this script
compares CPU-only, 2xM2070, and 1xPhi node configurations on Heat3D.

Usage:  python examples/xeon_phi_extension.py
"""

from repro.apps import heat3d
from repro.cluster import ohio_cluster
from repro.cluster.mic import mic_cluster

CFG = heat3d.Heat3DConfig(functional_shape=(40, 40, 40), simulated_steps=3)
NODES = 4

if __name__ == "__main__":
    rows = [
        ("CPU only (12 cores)", heat3d.run(ohio_cluster(NODES), CFG, mix="cpu")),
        ("CPU + 2x M2070", heat3d.run(ohio_cluster(NODES), CFG, mix="cpu+2gpu")),
        ("CPU + 1x Xeon Phi", heat3d.run(mic_cluster(NODES), CFG, mix="cpu+1gpu")),
    ]
    print(f"Heat3D ({CFG.shape[0]}^3 modeled, {NODES} nodes, {CFG.iterations} iterations):")
    for label, run in rows:
        print(f"  {label:22s} makespan={run.makespan:8.3f} s   speedup={run.speedup:7.1f}x")
