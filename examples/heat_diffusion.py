"""Heat3D on the framework — the paper's 7-point stencil application.

User-level program: one vectorized stencil function; decomposition, halo
exchange, device splitting, tiling, and overlap are the framework's job.

Usage:  python examples/heat_diffusion.py
"""

from repro.apps.heat3d import ALPHA, Heat3DConfig, make_work
from repro.cluster import ohio_cluster
from repro.core import RuntimeEnv, StencilKernel, shifted
from repro.data import heat3d_initial
from repro.sim import spmd_run

CFG = Heat3DConfig(functional_shape=(40, 40, 40), simulated_steps=10)


def heat_step(src, dst, region, alpha):
    """stencil_fp: explicit 7-point Jacobi update."""
    center = src[region]
    neighbours = (
        shifted(src, region, (1, 0, 0)) + shifted(src, region, (-1, 0, 0))
        + shifted(src, region, (0, 1, 0)) + shifted(src, region, (0, -1, 0))
        + shifted(src, region, (0, 0, 1)) + shifted(src, region, (0, 0, -1))
    )
    dst[region] = center + alpha * (neighbours - 6.0 * center)


def main(ctx):
    env = RuntimeEnv(ctx, "cpu+2gpu")
    st = env.get_stencil()
    st.configure(StencilKernel(heat_step, 1, make_work(ctx.node)),
                 CFG.functional_shape, model_shape=CFG.shape, parameter=ALPHA)
    st.set_global_grid(heat3d_initial(CFG.functional_shape, seed=CFG.seed))
    st.run(CFG.simulated_steps)
    env.finalize()
    return st.gather_global()


if __name__ == "__main__":
    result = spmd_run(main, ohio_cluster(8))
    grid = result.values[0]
    print(f"grid {grid.shape}: peak temperature {grid.max():.2f}, mean {grid.mean():.4f}")
    print(f"simulated time for {CFG.simulated_steps} steps on 8 nodes: "
          f"{result.makespan * 1e3:.2f} ms")
