"""Extension: variable-coefficient heat diffusion with static fields.

The paper's SII-C notes the framework processes "only a single target
object" per launch; this reproduction lifts that for read-only coefficient
fields.  Here a spatially varying diffusivity map (an insulating wall with
a gap) is registered as a static field; the kernel reads it alongside the
evolving temperature grid through the same ``shifted`` accessors.

Usage:  python examples/variable_coefficient_heat.py
"""

import numpy as np

from repro.cluster import ohio_cluster
from repro.core import RuntimeEnv, StencilKernel, shifted
from repro.core.stencil import StencilFields
from repro.device import WorkModel
from repro.sim import spmd_run

SHAPE = (48, 48)
ALPHA = 0.2
STEPS = 200

# Hot plate on the left; a low-diffusivity wall near it, with a gap.
GRID = np.zeros(SHAPE)
GRID[:, :6] = 100.0
KAPPA = np.ones(SHAPE)
KAPPA[:, 10:12] = 0.01
KAPPA[20:28, 10:12] = 1.0  # the gap

WORK = WorkModel(name="varheat", flops_per_elem=18, bytes_per_elem=48, cpu_efficiency=0.6)


def diffuse(src, dst, region, ctx: StencilFields):
    """Flux-limited update: du = alpha * sum(kappa_face * (neighbour - u))."""
    kappa = ctx["kappa"]

    def face_flux(offset):
        k_face = 0.5 * (kappa[region] + shifted(kappa, region, offset))
        return k_face * (shifted(src, region, offset) - src[region])

    dst[region] = src[region] + ctx.param * (
        face_flux((1, 0)) + face_flux((-1, 0)) + face_flux((0, 1)) + face_flux((0, -1))
    )


def main(ctx):
    env = RuntimeEnv(ctx, "cpu+2gpu")
    st = env.get_stencil()
    st.configure(
        StencilKernel(diffuse, 1, WORK),
        SHAPE,
        parameter=ALPHA,
        static_fields={"kappa": KAPPA},
    )
    st.set_global_grid(GRID)
    st.run(STEPS)
    env.finalize()
    return st.gather_global()


if __name__ == "__main__":
    result = spmd_run(main, ohio_cluster(4))
    grid = result.values[0]
    left = grid[:, :10].mean()
    right = grid[:, 12:].mean()
    gap_row = grid[24, 12:18].mean()
    wall_row = grid[4, 12:18].mean()
    print(f"after {STEPS} steps: left side {left:.2f}, right side {right:.2f}")
    print(f"heat crosses mainly through the gap: behind gap {gap_row:.3f} "
          f"vs behind wall {wall_row:.3f}")
    assert gap_row > wall_row
    print(f"simulated time on 4 nodes: {result.makespan * 1e3:.2f} ms")
