"""Graph analytics on the framework: PageRank and shortest paths.

The paper argues its three patterns cover most of Rodinia; this example
runs two classic graph algorithms — both irregular reductions at heart —
on a 4-node simulated cluster and cross-checks them against networkx.

Usage:  python examples/graph_analytics.py
"""

import numpy as np

from repro.apps.extra import pagerank, sssp
from repro.cluster import ohio_cluster
from repro.sim import spmd_run

PR = pagerank.PageRankConfig(n_nodes=300, n_edges=2400)
SP = sssp.SsspConfig(n_nodes=300, degree=9.0)


def _assemble(values, n, key):
    out = np.full(n, np.nan)
    for v in values:
        lo, hi = v["range"]
        out[lo:hi] = v[key]
    return out


if __name__ == "__main__":
    res = spmd_run(pagerank.rank_program, ohio_cluster(4), args=(PR, "cpu"))
    ranks = _assemble(res.values, PR.n_nodes, "ranks")
    top = np.argsort(ranks)[::-1][:5]
    print(f"PageRank converged in {res.values[0]['iterations']} iterations "
          f"({res.makespan * 1e3:.2f} ms simulated)")
    print("  top nodes:", ", ".join(f"{i} ({ranks[i]:.4f})" for i in top))

    res = spmd_run(sssp.rank_program, ohio_cluster(4), args=(SP, "cpu"))
    dist = _assemble(res.values, SP.n_nodes, "dist")
    reachable = np.isfinite(dist)
    print(f"SSSP from node {SP.source}: {res.values[0]['rounds']} Bellman-Ford "
          f"rounds ({res.makespan * 1e3:.2f} ms simulated)")
    print(f"  {reachable.sum()}/{SP.n_nodes} nodes reachable, "
          f"eccentricity {np.nanmax(np.where(reachable, dist, np.nan)):.3f}")

    ref = sssp.sequential_reference(SP)
    assert np.allclose(dist[np.isfinite(ref)], ref[np.isfinite(ref)])
    print("  verified against networkx Dijkstra")
