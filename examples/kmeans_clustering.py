"""Kmeans on the framework — the paper's generalized-reduction application.

User-level program: define the emit function, hand it to the GR runtime,
iterate.  Partitioning, CPU/GPU scheduling, and the global combine are the
framework's job.

Usage:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.apps.kmeans import KmeansConfig, make_work
from repro.cluster import ohio_cluster
from repro.core import GRKernel, RuntimeEnv
from repro.core.partition import block_partition
from repro.data import clustered_points
from repro.sim import spmd_run

CFG = KmeansConfig(functional_points=60_000, iterations=3)


def kmeans_emit(obj, points, start, centers):
    """gr_emit_fp: assign each point to its nearest center."""
    diff = points[:, None, :].astype(np.float64) - centers[None, :, :]
    keys = np.einsum("nkd,nkd->nk", diff, diff).argmin(axis=1)
    values = np.concatenate([points, np.ones((len(points), 1))], axis=1)
    obj.insert_many(keys, values)


def main(ctx):
    points, _ = clustered_points(CFG.functional_points, CFG.k, CFG.dims, seed=CFG.seed)
    centers = points[: CFG.k].astype(np.float64)

    env = RuntimeEnv(ctx, "cpu+2gpu")
    gr = env.get_GR()
    gr.set_kernel(GRKernel(kmeans_emit, "sum", CFG.k, CFG.dims + 1, make_work(CFG, ctx.node)))

    offsets = block_partition(len(points), ctx.size)
    lo, hi = int(offsets[ctx.rank]), int(offsets[ctx.rank + 1])
    for _ in range(CFG.iterations):
        gr.set_input(points[lo:hi], global_start=lo,
                     model_local_elems=CFG.n_points // ctx.size, parameter=centers)
        gr.start()
        combined = gr.get_global_reduction()
        counts = combined[:, -1:]
        centers = np.where(counts > 0, combined[:, :-1] / np.maximum(counts, 1.0), centers)
    env.finalize()
    return centers


if __name__ == "__main__":
    result = spmd_run(main, ohio_cluster(4))
    centers = result.values[0]
    print(f"{CFG.k} centers after {CFG.iterations} iterations; first three:")
    print(np.round(centers[:3], 4))
    print(f"simulated time on 4 CPU+2GPU nodes: {result.makespan:.4f} s")
