"""Moldyn on the framework — the paper's Listing 1/2 example, in Python.

Force computation (CF) is an irregular reduction; kinetic energy (KE) and
average velocity (AV) are generalized reductions sharing one GR runtime
instance, exactly as in the paper's case study.

Usage:  python examples/moldyn_simulation.py
"""

import numpy as np

from repro.apps.moldyn import (
    DEVICE_NODE_BYTES,
    DT,
    FORCE_G,
    MoldynConfig,
    gr_work,
    make_cf_work,
)
from repro.cluster import ohio_cluster
from repro.core import GRKernel, IRKernel, RuntimeEnv
from repro.data import geometric_mesh
from repro.sim import spmd_run

CFG = MoldynConfig(functional_nodes=5_000, functional_degree=14, simulated_steps=5)


def force_cmpt(obj, edges, edge_data, nodes, cutoff2):
    """ir_edge_compute_fp (paper Listing 1): pairwise force within cutoff."""
    d = nodes[edges[:, 0], 0:3] - nodes[edges[:, 1], 0:3]
    r2 = np.einsum("nd,nd->n", d, d)
    f = np.where((r2 < cutoff2)[:, None], FORCE_G * d / np.maximum(r2, 1e-12)[:, None], 0.0)
    obj.insert_many(edges[:, 0], f)
    obj.insert_many(edges[:, 1], -f)


def ke_emit(obj, nodes, start, _param):
    """gr_emit_fp for the KE kernel."""
    v = nodes[:, 3:6]
    obj.insert_many(np.zeros(len(nodes), dtype=np.int64), 0.5 * np.einsum("nd,nd->n", v, v))


def av_emit(obj, nodes, start, _param):
    """gr_emit_fp for the AV kernel."""
    obj.insert_many(np.zeros(len(nodes), dtype=np.int64),
                    np.concatenate([nodes[:, 3:6], np.ones((len(nodes), 1))], axis=1))


def main(ctx):
    positions, edges = geometric_mesh(CFG.functional_nodes, CFG.functional_degree, seed=CFG.seed)
    nodes = np.concatenate([positions, np.zeros_like(positions)], axis=1)
    nodes[:, 3] = 0.1 * np.sin(np.arange(len(nodes)))
    cutoff2 = (CFG.functional_degree / (len(nodes) * (4 / 3) * np.pi)) ** (2 / 3)

    env = RuntimeEnv(ctx, "cpu+2gpu")
    ir = env.get_IR()
    ir.set_kernel(IRKernel(force_cmpt, "sum", 3, make_cf_work(ctx.node, CFG)))
    ir.set_parameter(cutoff2)
    ir.set_mesh(edges, nodes, model_edges=CFG.n_edges, model_nodes=CFG.n_nodes,
                device_node_bytes=DEVICE_NODE_BYTES)

    for _ in range(CFG.simulated_steps):  # the CF time-step loop
        ir.start()
        forces = ir.get_local_reduction()
        updated = ir.get_local_nodes()
        updated[:, 3:6] += forces * DT
        updated[:, 0:3] += updated[:, 3:6] * DT
        ir.update_nodedata(updated)

    # KE and AV reuse one GR runtime with different user functions.
    local = ir.get_local_nodes()
    lo, _hi = ir.local_node_range
    gr = env.get_GR()
    gr.set_kernel(GRKernel(ke_emit, "sum", 1, 1, gr_work("ke")))
    gr.set_input(local, global_start=lo, model_local_elems=CFG.n_nodes // ctx.size)
    gr.start()
    ke = gr.get_global_reduction()[0, 0]

    gr.set_kernel(GRKernel(av_emit, "sum", 1, 4, gr_work("av")))
    gr.set_input(local, global_start=lo, model_local_elems=CFG.n_nodes // ctx.size)
    gr.start()
    raw = gr.get_global_reduction()[0]
    env.finalize()
    return ke, raw[0:3] / max(raw[3], 1.0)


if __name__ == "__main__":
    result = spmd_run(main, ohio_cluster(4))
    ke, av = result.values[0]
    print(f"kinetic energy after {CFG.simulated_steps} steps: {ke:.6f}")
    print(f"average velocity: {np.round(av, 6)}")
    print(f"simulated time on 4 nodes: {result.makespan:.4f} s")
