"""Campaign smoke: a 2-app x 2-preset x 2-seed sweep through the job service.

Runs one declarative campaign twice against servers sharing a persistent
result store:

1. **Cold**: every point travels in one ``POST /jobs/batch``, executes
   under the scheduler's rank budget, and lands in the store.  The run
   table must carry the full schema and every makespan must be
   bit-identical (repr-equal) to a direct ``execute_job`` of the same
   spec.
2. **Warm**: a *fresh* server (cold in-memory cache) over the same store
   directory answers the identical campaign with **zero** executions —
   every point is a persistent-store hit.

This is also the CI "campaign smoke" step.

Usage:  python examples/campaign_smoke.py
"""

import tempfile

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.runner import RUN_TABLE_COLUMNS
from repro.serve import JobServer, ServeClient, execute_job

CAMPAIGN = CampaignSpec.from_dict(
    {
        "name": "smoke",
        "axes": {
            "app": ["heat3d", "kmeans"],
            "preset": ["laptop", "latency"],
            "mix": "cpu",
            "nodes": [2],
            "seed": [0, 1],
        },
        "app_params": {
            "heat3d": {"functional_shape": [12, 12, 12], "simulated_steps": 2},
            "kmeans": {"functional_points": 3000, "k": 8, "iterations": 2},
        },
        "backend": None,
    }
)


def main() -> None:
    specs = CAMPAIGN.expand()
    print(f"campaign {CAMPAIGN.name!r}: {len(specs)} points "
          f"(2 apps x 2 presets x 2 seeds)")

    with tempfile.TemporaryDirectory() as store:
        with JobServer(port=0, rank_budget=16, store_dir=store) as server:
            print(f"cold run via {server.url} (one POST /jobs/batch) ...")
            cold = CampaignRunner(CAMPAIGN, client=ServeClient(server.url)).run()
        assert cold.ok, cold.failures()
        assert cold.stats["executed"] == len(specs), cold.stats
        for row in cold.rows:
            missing = [c for c in RUN_TABLE_COLUMNS if c not in row]
            assert not missing, f"run-table row missing {missing}"
        for spec, row in zip(specs, cold.rows):
            direct = execute_job(spec)
            assert repr(row["makespan"]) == repr(direct["makespan"]), (
                spec.app, row["makespan"], direct["makespan"],
            )
        print(f"  {len(specs)} executed, all makespans == direct runs, "
              "run-table schema OK")

        with JobServer(port=0, rank_budget=16, store_dir=store) as server:
            print("warm run on a FRESH server over the same store ...")
            warm = CampaignRunner(CAMPAIGN, client=ServeClient(server.url)).run()
        assert warm.ok, warm.failures()
        assert warm.stats["executed"] == 0, warm.stats
        assert warm.stats["store_hits"] == len(specs), warm.stats
        assert all(row["cached"] for row in warm.rows)
        for a, b in zip(cold.rows, warm.rows):
            assert repr(a["makespan"]) == repr(b["makespan"])
        print(f"  0 executed, {warm.stats['store_hits']} store hits — "
              "the store answered the whole sweep")

    print("campaign smoke OK: batched sweep bit-identical, warm re-run free")


if __name__ == "__main__":
    main()
