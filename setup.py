"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP
517/660 editable installs fail; this shim lets ``pip install -e .`` take the
classic ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
